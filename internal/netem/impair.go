package netem

import (
	"hwatch/internal/sim"
)

// GEParams parameterizes a Gilbert–Elliott two-state loss channel: the
// chain sits in a Good or a Bad state, transitions per packet with the
// given probabilities, and drops with the state's loss rate. Burst
// lengths are geometric with mean 1/BadToGood packets; gaps between
// bursts have mean 1/GoodToBad. The classic bursty-link model, and the
// loss process the fault injector stages for burst-loss windows.
type GEParams struct {
	GoodToBad float64 // per-packet P(Good -> Bad)
	BadToGood float64 // per-packet P(Bad -> Good)
	LossGood  float64 // drop probability while Good (usually 0)
	LossBad   float64 // drop probability while Bad (often 1)
}

// Enabled reports whether the channel can drop anything at all.
func (g GEParams) Enabled() bool { return g.LossBad > 0 || g.LossGood > 0 }

// GilbertElliott is a running two-state burst-loss channel. It is pure
// state machine — no engine, no clock — so the same seeded RNG always
// yields the same loss pattern: the determinism the golden-digest
// contract needs from fault schedules.
type GilbertElliott struct {
	P   GEParams
	Rng *sim.RNG

	bad   bool
	Seen  int64
	Drops int64
}

// Drop advances the channel by one packet (state transition first, then
// the loss draw in the new state) and reports whether that packet is lost.
func (g *GilbertElliott) Drop() bool {
	g.Seen++
	if g.bad {
		if g.Rng.Float64() < g.P.BadToGood {
			g.bad = false
		}
	} else {
		if g.Rng.Float64() < g.P.GoodToBad {
			g.bad = true
		}
	}
	loss := g.P.LossGood
	if g.bad {
		loss = g.P.LossBad
	}
	if loss > 0 && g.Rng.Float64() < loss {
		g.Drops++
		return true
	}
	return false
}

// Bad reports whether the channel currently sits in the Bad state.
func (g *GilbertElliott) Bad() bool { return g.bad }

// Impairment is a fault-injection filter for robustness testing: it can
// randomly drop, duplicate, delay-reorder, or corrupt packets crossing a
// host. All probabilities are per packet and independent; zero values
// disable the corresponding fault. Corruption flips a bit in the Rwnd
// field *without* fixing the checksum, so checksum-verifying receivers
// must discard the packet.
type Impairment struct {
	Eng *sim.Engine
	Rng *sim.RNG

	DropP        float64
	DupP         float64
	ReorderP     float64 // victim is held and re-injected after ReorderDelay
	ReorderDelay int64
	CorruptP     float64

	// GE, when non-nil, additionally runs every packet through a
	// Gilbert–Elliott burst-loss channel (checked before the independent
	// per-packet faults).
	GE *GilbertElliott

	// Disabled suspends the impairment entirely — no drops and, crucially,
	// no RNG draws, so a fault window can toggle an impairment on and off
	// without perturbing the run's random sequence outside the window.
	Disabled bool

	// Direction selection; both default to impairing.
	SkipInbound  bool
	SkipOutbound bool

	host *Host

	// Bound injection callbacks cached at attach time so duplicate and
	// reorder re-injections schedule without a per-event closure.
	injectInFn  func(any)
	injectOutFn func(any)

	Dropped, Duplicated, Reordered, Corrupted int64
}

// AttachImpairment installs the impairment on the host's filter chains and
// wires its injection path.
func AttachImpairment(h *Host, imp *Impairment) *Impairment {
	if imp.Eng == nil {
		imp.Eng = h.Eng
	}
	if imp.Rng == nil {
		panic("netem: impairment needs an RNG")
	}
	imp.host = h
	imp.injectInFn = imp.injectInbound
	imp.injectOutFn = imp.injectOutbound
	h.AddFilter(imp)
	return imp
}

// injectInbound / injectOutbound are the ScheduleArg forms of the host
// injection entry points.
func (im *Impairment) injectInbound(a any)  { im.host.InjectInbound(a.(*Packet)) }
func (im *Impairment) injectOutbound(a any) { im.host.InjectOutbound(a.(*Packet)) }

// Name implements Filter.
func (im *Impairment) Name() string { return "impair" }

// Outbound implements Filter.
func (im *Impairment) Outbound(p *Packet) Verdict {
	if im.SkipOutbound {
		return VerdictPass
	}
	return im.apply(p, false)
}

// Inbound implements Filter.
func (im *Impairment) Inbound(p *Packet) Verdict {
	if im.SkipInbound {
		return VerdictPass
	}
	return im.apply(p, true)
}

func (im *Impairment) apply(p *Packet, inbound bool) Verdict {
	if im.Disabled {
		return VerdictPass
	}
	if im.GE != nil && im.GE.Drop() {
		im.Dropped++
		return VerdictDrop
	}
	if im.DropP > 0 && im.Rng.Float64() < im.DropP {
		im.Dropped++
		return VerdictDrop
	}
	if im.CorruptP > 0 && im.Rng.Float64() < im.CorruptP {
		im.Corrupted++
		p.Rwnd ^= 0x0040 // bit flip; checksum left stale on purpose
	}
	if im.DupP > 0 && im.Rng.Float64() < im.DupP {
		im.Duplicated++
		clone := ClonePacket(p)
		clone.ID = im.host.NextPacketID()
		im.inject(clone, inbound, 0)
	}
	if im.ReorderP > 0 && im.Rng.Float64() < im.ReorderP {
		im.Reordered++
		delay := im.ReorderDelay
		if delay <= 0 {
			delay = 100 * sim.Microsecond
		}
		victim := p
		im.inject(victim, inbound, delay)
		return VerdictStolen
	}
	return VerdictPass
}

func (im *Impairment) inject(p *Packet, inbound bool, delay int64) {
	deliver := im.injectOutFn
	if inbound {
		deliver = im.injectInFn
	}
	if delay < 0 {
		// Duplicates go out immediately but from a fresh event, so the
		// original keeps its place in the chain.
		delay = 0
	}
	im.Eng.ScheduleArg(delay, deliver, p)
}
