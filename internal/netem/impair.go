package netem

import (
	"hwatch/internal/sim"
)

// Impairment is a fault-injection filter for robustness testing: it can
// randomly drop, duplicate, delay-reorder, or corrupt packets crossing a
// host. All probabilities are per packet and independent; zero values
// disable the corresponding fault. Corruption flips a bit in the Rwnd
// field *without* fixing the checksum, so checksum-verifying receivers
// must discard the packet.
type Impairment struct {
	Eng *sim.Engine
	Rng *sim.RNG

	DropP        float64
	DupP         float64
	ReorderP     float64 // victim is held and re-injected after ReorderDelay
	ReorderDelay int64
	CorruptP     float64

	// Direction selection; both default to impairing.
	SkipInbound  bool
	SkipOutbound bool

	host *Host

	Dropped, Duplicated, Reordered, Corrupted int64
}

// AttachImpairment installs the impairment on the host's filter chains and
// wires its injection path.
func AttachImpairment(h *Host, imp *Impairment) *Impairment {
	if imp.Eng == nil {
		imp.Eng = h.Eng
	}
	if imp.Rng == nil {
		panic("netem: impairment needs an RNG")
	}
	imp.host = h
	h.AddFilter(imp)
	return imp
}

// Name implements Filter.
func (im *Impairment) Name() string { return "impair" }

// Outbound implements Filter.
func (im *Impairment) Outbound(p *Packet) Verdict {
	if im.SkipOutbound {
		return VerdictPass
	}
	return im.apply(p, false)
}

// Inbound implements Filter.
func (im *Impairment) Inbound(p *Packet) Verdict {
	if im.SkipInbound {
		return VerdictPass
	}
	return im.apply(p, true)
}

func (im *Impairment) apply(p *Packet, inbound bool) Verdict {
	if im.DropP > 0 && im.Rng.Float64() < im.DropP {
		im.Dropped++
		return VerdictDrop
	}
	if im.CorruptP > 0 && im.Rng.Float64() < im.CorruptP {
		im.Corrupted++
		p.Rwnd ^= 0x0040 // bit flip; checksum left stale on purpose
	}
	if im.DupP > 0 && im.Rng.Float64() < im.DupP {
		im.Duplicated++
		clone := p.Clone()
		clone.ID = im.host.NextPacketID()
		im.inject(clone, inbound, 0)
	}
	if im.ReorderP > 0 && im.Rng.Float64() < im.ReorderP {
		im.Reordered++
		delay := im.ReorderDelay
		if delay <= 0 {
			delay = 100 * sim.Microsecond
		}
		victim := p
		im.inject(victim, inbound, delay)
		return VerdictStolen
	}
	return VerdictPass
}

func (im *Impairment) inject(p *Packet, inbound bool, delay int64) {
	deliver := func() {
		if inbound {
			im.host.InjectInbound(p)
		} else {
			im.host.InjectOutbound(p)
		}
	}
	if delay <= 0 {
		// Duplicates go out immediately but from a fresh event, so the
		// original keeps its place in the chain.
		im.Eng.Schedule(0, deliver)
		return
	}
	im.Eng.Schedule(delay, deliver)
}
