package netem

import (
	"fmt"

	"hwatch/internal/sim"
)

// Network owns an engine plus the hosts and switches of one simulated
// fabric, and provides wiring helpers. Topology builders in internal/topo
// assemble Networks.
type Network struct {
	Eng      *sim.Engine
	hosts    map[NodeID]*Host
	switches []*Switch
	nextID   NodeID
	pktID    uint64
}

// NewNetwork returns an empty network on a fresh engine.
func NewNetwork() *Network {
	return &Network{Eng: sim.New(), hosts: make(map[NodeID]*Host), nextID: 1}
}

// NewHost creates and registers a host with the next free address.
func (n *Network) NewHost(name string) *Host {
	id := n.nextID
	n.nextID++
	if name == "" {
		name = fmt.Sprintf("h%d", id)
	}
	h := NewHost(n.Eng, id, name, &n.pktID)
	n.hosts[id] = h
	return h
}

// NewSwitch creates and registers a switch.
func (n *Network) NewSwitch(name string) *Switch {
	if name == "" {
		name = fmt.Sprintf("sw%d", len(n.switches))
	}
	s := NewSwitch(name)
	n.switches = append(n.switches, s)
	return s
}

// Host returns the host with the given address.
func (n *Network) Host(id NodeID) *Host { return n.hosts[id] }

// Hosts returns all hosts, indexed by address (callers must not mutate).
func (n *Network) Hosts() map[NodeID]*Host { return n.hosts }

// Switches returns all switches.
func (n *Network) Switches() []*Switch { return n.switches }

// QueueFactory builds a fresh queue discipline for each port; topology
// builders take one so every output port gets its own buffer.
type QueueFactory func() Queue

// LinkHostSwitch wires host <-> switch full duplex: the host's uplink port
// (queue hq) toward the switch, and a switch port (queue sq) toward the
// host. Returns the switch-side port index.
func (n *Network) LinkHostSwitch(h *Host, s *Switch, hq, sq Queue, rateBps, delay int64) int {
	up := NewPort(n.Eng, hq, rateBps, delay)
	up.Label = h.Name + ".up"
	up.Connect(s)
	h.AttachUplink(up)

	down := NewPort(n.Eng, sq, rateBps, delay)
	down.Connect(h)
	idx := s.AddPort(down)
	s.Route(h.ID, idx)
	return idx
}

// LinkSwitches wires a <-> b full duplex with per-direction queues.
// Returns (port index on a toward b, port index on b toward a).
func (n *Network) LinkSwitches(a, b *Switch, aq, bq Queue, rateBps, delay int64) (int, int) {
	ab := NewPort(n.Eng, aq, rateBps, delay)
	ab.Connect(b)
	ai := a.AddPort(ab)

	ba := NewPort(n.Eng, bq, rateBps, delay)
	ba.Connect(a)
	bi := b.AddPort(ba)
	return ai, bi
}
