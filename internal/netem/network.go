package netem

import (
	"fmt"

	"hwatch/internal/sim"
)

// Network owns the engine(s) plus the hosts and switches of one simulated
// fabric, and provides wiring helpers. Topology builders in internal/topo
// assemble Networks.
//
// A network is either single-loop (the default: one engine, Eng) or
// sharded (NewShardedNetwork: one engine per shard under a sim.Group).
// Every node belongs to exactly one shard; links whose endpoints live on
// different shards deliver through the group's conservative merge, and the
// minimum cross-shard propagation delay is the group's lookahead bound.
type Network struct {
	// Eng is shard 0's engine — the only engine of a single-loop network,
	// and the coordinator shard of a sharded one.
	Eng      *sim.Engine
	engines  []*sim.Engine
	group    *sim.Group // nil when single-loop
	hosts    map[NodeID]*Host
	switches []*Switch
	swShard  map[*Switch]int
	nextID   NodeID
	// pktIDs holds one packet-ID counter per shard, shard i counting from
	// i<<48 so ID streams stay disjoint without cross-shard coordination
	// (and shard 0 — hence every single-loop run — counts from 0 exactly
	// as before). Fixed length: hosts keep pointers into it.
	pktIDs []uint64
	// minCross is the smallest cross-shard link delay seen (0 until the
	// first cross-shard link); it becomes the group lookahead.
	minCross int64
}

// NewNetwork returns an empty single-loop network on a fresh engine.
func NewNetwork() *Network { return NewShardedNetwork(1) }

// NewShardedNetwork returns an empty network partitioned into the given
// number of shards. One shard is the plain single-loop configuration —
// same engine type, no group, zero behavior change.
func NewShardedNetwork(shards int) *Network {
	if shards < 1 {
		shards = 1
	}
	n := &Network{
		hosts:   make(map[NodeID]*Host),
		swShard: make(map[*Switch]int),
		nextID:  1,
		pktIDs:  make([]uint64, shards),
	}
	for i := range n.pktIDs {
		n.pktIDs[i] = uint64(i) << 48
	}
	if shards == 1 {
		n.Eng = sim.New()
		n.engines = []*sim.Engine{n.Eng}
		return n
	}
	n.group = sim.NewGroup(shards, sim.DefaultOptions())
	for i := 0; i < shards; i++ {
		n.engines = append(n.engines, n.group.Engine(i))
	}
	n.Eng = n.engines[0]
	return n
}

// Shards returns the shard count (1 for a single-loop network).
func (n *Network) Shards() int { return len(n.engines) }

// Group returns the shard group, nil for a single-loop network.
func (n *Network) Group() *sim.Group { return n.group }

// Engine returns shard i's engine.
func (n *Network) Engine(i int) *sim.Engine { return n.engines[i] }

// Lookahead returns the minimum cross-shard link delay (0 when no link
// crosses a shard boundary yet).
func (n *Network) Lookahead() int64 { return n.minCross }

// SealLookahead installs the observed minimum cross-shard delay as the
// group's conservative window width. Topology builders call it once the
// fabric is wired; it panics if a cross-shard link exists with no positive
// delay (the conservative protocol has no safe window then).
func (n *Network) SealLookahead() {
	if n.group == nil {
		return
	}
	if n.minCross > 0 {
		n.group.SetLookahead(n.minCross)
	}
}

// NewHost creates and registers a host with the next free address, on
// shard 0.
func (n *Network) NewHost(name string) *Host { return n.NewHostIn(0, name) }

// NewHostIn creates and registers a host on the given shard.
func (n *Network) NewHostIn(shard int, name string) *Host {
	id := n.nextID
	n.nextID++
	if name == "" {
		name = fmt.Sprintf("h%d", id)
	}
	h := NewHost(n.engines[shard], id, name, &n.pktIDs[shard])
	n.hosts[id] = h
	return h
}

// NewSwitch creates and registers a switch on shard 0.
func (n *Network) NewSwitch(name string) *Switch { return n.NewSwitchIn(0, name) }

// NewSwitchIn creates and registers a switch on the given shard: all its
// ports will transmit on that shard's engine.
func (n *Network) NewSwitchIn(shard int, name string) *Switch {
	if name == "" {
		name = fmt.Sprintf("sw%d", len(n.switches))
	}
	s := NewSwitch(name)
	n.switches = append(n.switches, s)
	n.swShard[s] = shard
	return s
}

// SwitchEngine returns the engine owning the switch's ports.
func (n *Network) SwitchEngine(s *Switch) *sim.Engine {
	return n.engines[n.swShard[s]]
}

// Host returns the host with the given address.
func (n *Network) Host(id NodeID) *Host { return n.hosts[id] }

// Hosts returns all hosts, indexed by address (callers must not mutate).
func (n *Network) Hosts() map[NodeID]*Host { return n.hosts }

// Switches returns all switches.
func (n *Network) Switches() []*Switch { return n.switches }

// QueueFactory builds a fresh queue discipline for each port; topology
// builders take one so every output port gets its own buffer.
type QueueFactory func() Queue

// CrossBind marks p's peer as living on dst's shard (no-op when src owns
// both ends) and folds the link delay into the lookahead bound. Topology
// builders use it for hand-wired ports; Link* call it internally.
func (n *Network) CrossBind(p *Port, dst *sim.Engine) {
	if p.Eng == dst {
		return
	}
	if p.Delay <= 0 {
		panic(fmt.Sprintf("netem: cross-shard link %q needs a positive delay", p.Label))
	}
	p.BindRemote(dst)
	if n.minCross == 0 || p.Delay < n.minCross {
		n.minCross = p.Delay
	}
}

// LinkHostSwitch wires host <-> switch full duplex: the host's uplink port
// (queue hq) toward the switch, and a switch port (queue sq) toward the
// host. Each port transmits on its owning node's shard; a shard-crossing
// link delivers through the group merge. Returns the switch-side port
// index.
func (n *Network) LinkHostSwitch(h *Host, s *Switch, hq, sq Queue, rateBps, delay int64) int {
	swEng := n.SwitchEngine(s)
	up := NewPort(h.Eng, hq, rateBps, delay)
	up.Label = h.Name + ".up"
	up.Connect(s)
	n.CrossBind(up, swEng)
	h.AttachUplink(up)

	down := NewPort(swEng, sq, rateBps, delay)
	down.Connect(h)
	n.CrossBind(down, h.Eng)
	idx := s.AddPort(down)
	s.Route(h.ID, idx)
	return idx
}

// LinkSwitches wires a <-> b full duplex with per-direction queues.
// Returns (port index on a toward b, port index on b toward a).
func (n *Network) LinkSwitches(a, b *Switch, aq, bq Queue, rateBps, delay int64) (int, int) {
	aEng, bEng := n.SwitchEngine(a), n.SwitchEngine(b)
	ab := NewPort(aEng, aq, rateBps, delay)
	ab.Connect(b)
	n.CrossBind(ab, bEng)
	ai := a.AddPort(ab)

	ba := NewPort(bEng, bq, rateBps, delay)
	ba.Connect(a)
	n.CrossBind(ba, aEng)
	bi := b.AddPort(ba)
	return ai, bi
}
