// Package netem models the data-center network fabric at packet granularity:
// TCP/IP packet surrogates, rate/delay links with output queues, switches,
// and hosts with hypervisor-style ingress/egress filter chains.
//
// It plays the role ns-2 plays in the HWatch paper: everything above it
// (TCP agents, the HWatch shim, workloads) observes only packets and time.
package netem

import "fmt"

// NodeID addresses a host in the network (an IP-address surrogate).
type NodeID int32

// FlowKey is the TCP 4-tuple identifying one direction of a connection.
type FlowKey struct {
	Src, Dst         NodeID
	SrcPort, DstPort uint16
}

// Reverse returns the key of the opposite direction.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Src: k.Dst, Dst: k.Src, SrcPort: k.DstPort, DstPort: k.SrcPort}
}

func (k FlowKey) String() string {
	return fmt.Sprintf("%d:%d>%d:%d", k.Src, k.SrcPort, k.Dst, k.DstPort)
}

// Hash mixes the 4-tuple through a splitmix64 finalizer for use as an
// open-addressing table index. It is deliberately seedless: hash values —
// and therefore any probe order derived from them — are identical across
// processes and runs, which the deterministic-replay contract requires
// (the runtime's seeded map hash is exactly what flow tables must avoid).
func (k FlowKey) Hash() uint64 {
	x := uint64(uint32(k.Src))<<32 | uint64(uint32(k.Dst))
	x ^= (uint64(k.SrcPort)<<16 | uint64(k.DstPort)) * 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// TCPFlags are the TCP header flag bits used by the model.
type TCPFlags uint8

const (
	FlagFIN TCPFlags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
	FlagECE // ECN-Echo
	FlagCWR // Congestion Window Reduced
)

func (f TCPFlags) Has(bit TCPFlags) bool { return f&bit != 0 }

func (f TCPFlags) String() string {
	names := []struct {
		bit TCPFlags
		s   string
	}{
		{FlagSYN, "SYN"}, {FlagACK, "ACK"}, {FlagFIN, "FIN"}, {FlagRST, "RST"},
		{FlagPSH, "PSH"}, {FlagURG, "URG"}, {FlagECE, "ECE"}, {FlagCWR, "CWR"},
	}
	out := ""
	for _, n := range names {
		if f.Has(n.bit) {
			if out != "" {
				out += "|"
			}
			out += n.s
		}
	}
	if out == "" {
		return "-"
	}
	return out
}

// ECN is the two-bit IP ECN codepoint.
type ECN uint8

const (
	NotECT ECN = iota // not ECN-capable transport
	ECT1              // ECN-capable (1)
	ECT0              // ECN-capable (0)
	CE                // congestion experienced
)

func (e ECN) String() string {
	switch e {
	case NotECT:
		return "NotECT"
	case ECT0:
		return "ECT0"
	case ECT1:
		return "ECT1"
	case CE:
		return "CE"
	}
	return "ECN?"
}

// Capable reports whether the codepoint allows a switch to mark instead of
// dropping.
func (e ECN) Capable() bool { return e == ECT0 || e == ECT1 || e == CE }

// Wire-size constants (bytes). HeaderSize matches Ethernet+IP+TCP without
// options; MinProbeSize matches the paper's 38-byte raw-IP probe (ETH 18 +
// IP 20 + 0 payload).
const (
	EthHeader    = 18
	IPHeader     = 20
	TCPHeader    = 20
	HeaderSize   = EthHeader + IPHeader + TCPHeader
	MinProbeSize = EthHeader + IPHeader
	DefaultMSS   = 1442 // payload bytes so a full segment is 1500 on the wire
	DefaultMTU   = 1500
)

// Packet is the unit of transfer. It is a structural surrogate for an
// Ethernet/IP/TCP packet: fields the model reads are explicit, everything
// else is folded into Wire (total on-wire size).
type Packet struct {
	ID uint64 // globally unique, for tracing

	Src, Dst         NodeID
	SrcPort, DstPort uint16

	Seq, Ack int64    // byte sequence / cumulative ack
	Flags    TCPFlags //
	ECN      ECN      // IP ECN codepoint
	Payload  int      // TCP payload bytes
	Wire     int      // total bytes on the wire (headers + payload)

	// Rwnd is the raw 16-bit receive-window field; the effective window in
	// bytes is Rwnd << peer's window scale. WScaleOpt carries the window
	// scale option on SYN/SYN-ACK segments (-1 when absent).
	Rwnd      uint16
	WScaleOpt int8

	// TSVal / TSEcr model the TCP timestamp option (ns), used for RTT
	// estimation exactly as RFC 7323 echoes them.
	TSVal, TSEcr int64

	// SackOK on SYN/SYN-ACK negotiates selective acknowledgments; Sack
	// carries up to 3 SACK blocks on ACKs (RFC 2018).
	SackOK bool
	Sack   []SackBlock

	// Checksum is the TCP checksum over the canonical header serialization
	// (see Checksum). Set by the sender; middleboxes that rewrite header
	// fields must update it (HWatch does so incrementally, RFC 1624).
	Checksum uint16

	// Probe marks an HWatch hypervisor probe (raw IP, never delivered to
	// the guest stack).
	Probe bool

	// SentAt is the time the transport first put the packet on the host
	// egress path; EnqueuedAt is set by the queue it last entered.
	SentAt     int64
	EnqueuedAt int64

	// Hops counts forwarding steps, as a routing-loop guard.
	Hops int
}

// SackBlock is one selective-acknowledgment range [Start, End).
type SackBlock struct {
	Start, End int64
}

// SackOptionBytes is the wire cost of n SACK blocks (RFC 2018: 2 bytes of
// option header + 8 per block).
func SackOptionBytes(n int) int {
	if n == 0 {
		return 0
	}
	return 2 + 8*n
}

// FlowKey returns the forward-direction 4-tuple of the packet.
func (p *Packet) FlowKey() FlowKey {
	return FlowKey{Src: p.Src, Dst: p.Dst, SrcPort: p.SrcPort, DstPort: p.DstPort}
}

// IsData reports whether the packet carries payload bytes.
func (p *Packet) IsData() bool { return p.Payload > 0 }

func (p *Packet) String() string {
	return fmt.Sprintf("#%d %s %s seq=%d ack=%d len=%d ecn=%s rwnd=%d",
		p.ID, p.FlowKey(), p.Flags, p.Seq, p.Ack, p.Payload, p.ECN, p.Rwnd)
}

// Clone returns a copy of the packet (used by retransmissions and traces).
func (p *Packet) Clone() *Packet {
	q := *p
	return &q
}
