package netem

import "encoding/binary"

// The TCP checksum in this model is the RFC 1071 one's-complement sum over a
// canonical serialization of the header fields a middlebox may observe or
// rewrite. It exists so the HWatch shim must do the same work a real
// hypervisor datapath does when it rewrites the receive window: either
// recompute the sum in full or patch it incrementally per RFC 1624.

// headerInto serializes the checksummed header fields into the caller's
// buffer and returns the byte count. The checksum field itself is excluded
// (treated as zero), as in real TCP. The buffer is passed in (rather than
// declared here and a slice of it returned) so it stays on the caller's
// stack: returning b[:n] would force the array to escape, one heap
// allocation per checksum over every packet — measured at 96% of
// BenchmarkFig8's allocations.
func headerInto(b *[128]byte, p *Packet) int {
	binary.BigEndian.PutUint32(b[0:], uint32(p.Src))
	binary.BigEndian.PutUint32(b[4:], uint32(p.Dst))
	binary.BigEndian.PutUint16(b[8:], p.SrcPort)
	binary.BigEndian.PutUint16(b[10:], p.DstPort)
	binary.BigEndian.PutUint64(b[12:], uint64(p.Seq))
	binary.BigEndian.PutUint64(b[20:], uint64(p.Ack))
	b[28] = byte(p.Flags)
	// b[29] deliberately stays zero: the ECN codepoint lives in the IP
	// header, which the TCP checksum does not cover — switches may CE-mark
	// in flight without invalidating the transport checksum.
	binary.BigEndian.PutUint16(b[30:], p.Rwnd)
	b[32] = byte(p.WScaleOpt)
	binary.BigEndian.PutUint64(b[34:], uint64(p.TSVal))
	binary.BigEndian.PutUint64(b[42:], uint64(p.TSEcr))
	binary.BigEndian.PutUint32(b[50:], uint32(p.Payload))
	if p.SackOK {
		b[54] = 1
	}
	n := 55
	for _, sb := range p.Sack {
		binary.BigEndian.PutUint64(b[n:], uint64(sb.Start))
		binary.BigEndian.PutUint64(b[n+8:], uint64(sb.End))
		n += 16
		if n+16 > len(b) {
			break
		}
	}
	return n
}

// onesSum accumulates the one's-complement sum of 16-bit words.
func onesSum(data []byte) uint32 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	return sum
}

func fold(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return uint16(sum)
}

// Checksum computes the full checksum of the packet header.
func Checksum(p *Packet) uint16 {
	var b [128]byte
	n := headerInto(&b, p)
	return ^fold(onesSum(b[:n]))
}

// SetChecksum stamps the packet with its freshly computed checksum.
func SetChecksum(p *Packet) { p.Checksum = Checksum(p) }

// VerifyChecksum reports whether the stored checksum matches the header.
func VerifyChecksum(p *Packet) bool { return p.Checksum == Checksum(p) }

// UpdateChecksum16 incrementally patches a checksum after a 16-bit header
// field changed from old to new, per RFC 1624 (eqn. 3):
//
//	HC' = ~(~HC + ~m + m')
//
// HWatch uses this when rewriting the rwnd field of in-flight ACKs.
func UpdateChecksum16(sum uint16, old, new uint16) uint16 {
	v := uint32(^sum&0xffff) + uint32(^old&0xffff) + uint32(new)
	return ^fold(v)
}
