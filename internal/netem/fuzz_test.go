package netem

import "testing"

// Fuzz targets double as regression seeds under plain `go test` and can be
// expanded with `go test -fuzz=Fuzz...`.

func FuzzIncrementalChecksum(f *testing.F) {
	f.Add(int32(1), int32(2), uint16(3), uint16(4), int64(5), int64(6), uint16(100), uint16(200))
	f.Add(int32(-1), int32(1<<30), uint16(0), uint16(65535), int64(-9), int64(1<<60), uint16(0), uint16(65535))
	f.Fuzz(func(t *testing.T, src, dst int32, sp, dp uint16, seq, ack int64, oldW, newW uint16) {
		p := &Packet{
			Src: NodeID(src), Dst: NodeID(dst), SrcPort: sp, DstPort: dp,
			Seq: seq, Ack: ack, Flags: FlagACK, Rwnd: oldW, WScaleOpt: -1,
		}
		SetChecksum(p)
		patched := UpdateChecksum16(p.Checksum, p.Rwnd, newW)
		p.Rwnd = newW
		if patched != Checksum(p) {
			t.Fatalf("incremental %#x != full %#x", patched, Checksum(p))
		}
	})
}

func FuzzFlowHashStable(f *testing.F) {
	f.Add(int32(1), int32(2), uint16(3), uint16(4))
	f.Fuzz(func(t *testing.T, src, dst int32, sp, dp uint16) {
		k := FlowKey{Src: NodeID(src), Dst: NodeID(dst), SrcPort: sp, DstPort: dp}
		if flowHash(k) != flowHash(k) {
			t.Fatal("hash not deterministic")
		}
	})
}
