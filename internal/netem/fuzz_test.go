package netem

import (
	"reflect"
	"testing"
)

// Fuzz targets double as regression seeds under plain `go test` and can be
// expanded with `go test -fuzz=Fuzz...`.

func FuzzIncrementalChecksum(f *testing.F) {
	f.Add(int32(1), int32(2), uint16(3), uint16(4), int64(5), int64(6), uint16(100), uint16(200))
	f.Add(int32(-1), int32(1<<30), uint16(0), uint16(65535), int64(-9), int64(1<<60), uint16(0), uint16(65535))
	f.Fuzz(func(t *testing.T, src, dst int32, sp, dp uint16, seq, ack int64, oldW, newW uint16) {
		p := &Packet{
			Src: NodeID(src), Dst: NodeID(dst), SrcPort: sp, DstPort: dp,
			Seq: seq, Ack: ack, Flags: FlagACK, Rwnd: oldW, WScaleOpt: -1,
		}
		SetChecksum(p)
		patched := UpdateChecksum16(p.Checksum, p.Rwnd, newW)
		p.Rwnd = newW
		if patched != Checksum(p) {
			t.Fatalf("incremental %#x != full %#x", patched, Checksum(p))
		}
	})
}

func FuzzFlowHashStable(f *testing.F) {
	f.Add(int32(1), int32(2), uint16(3), uint16(4))
	f.Fuzz(func(t *testing.T, src, dst int32, sp, dp uint16) {
		k := FlowKey{Src: NodeID(src), Dst: NodeID(dst), SrcPort: sp, DstPort: dp}
		if flowHash(k) != flowHash(k) {
			t.Fatal("hash not deterministic")
		}
	})
}

// FuzzChecksumPatchChain verifies RFC 1624 incremental updates compose: a
// chain of successive rwnd rewrites patched incrementally must land on the
// same checksum as a full recompute — the invariant the shim's repeated
// clamp rewrites depend on.
func FuzzChecksumPatchChain(f *testing.F) {
	f.Add(int32(1), int32(2), uint16(3), uint16(4), uint16(100), uint16(200), uint16(300), uint16(0))
	f.Add(int32(-7), int32(1<<28), uint16(65535), uint16(1), uint16(0), uint16(65535), uint16(1), uint16(65534))
	f.Fuzz(func(t *testing.T, src, dst int32, sp, dp, w1, w2, w3, w4 uint16) {
		p := &Packet{
			Src: NodeID(src), Dst: NodeID(dst), SrcPort: sp, DstPort: dp,
			Flags: FlagACK, Rwnd: w1, WScaleOpt: -1,
		}
		SetChecksum(p)
		for _, w := range []uint16{w2, w3, w4, w1} {
			p.Checksum = UpdateChecksum16(p.Checksum, p.Rwnd, w)
			p.Rwnd = w
			if p.Checksum != Checksum(p) {
				t.Fatalf("chained patch %#x != full %#x at rwnd=%d", p.Checksum, Checksum(p), w)
			}
			if !VerifyChecksum(p) {
				t.Fatalf("patched packet fails verification at rwnd=%d", w)
			}
		}
	})
}

// FuzzPacketPoolZeroed is the pooling contract's allocation half: whatever
// garbage a released packet carried, the next AllocPacket must hand out a
// fully zeroed packet (the model relies on zero defaults for every field a
// sender does not set).
func FuzzPacketPoolZeroed(f *testing.F) {
	f.Add(uint64(9), int32(1), int32(2), int64(3), int64(4), uint16(5), true, 6, 7)
	f.Fuzz(func(t *testing.T, id uint64, src, dst int32, seq, ack int64, rwnd uint16, probe bool, payload, hops int) {
		p := AllocPacket()
		p.ID = id
		p.Src, p.Dst = NodeID(src), NodeID(dst)
		p.Seq, p.Ack = seq, ack
		p.Rwnd = rwnd
		p.Probe = probe
		p.Payload = payload
		p.Hops = hops
		p.Sack = append(p.Sack, SackBlock{Start: seq, End: ack})
		ReleasePacket(p)
		q := AllocPacket()
		if !reflect.DeepEqual(q, &Packet{}) {
			t.Fatalf("AllocPacket returned non-zero packet: %+v", q)
		}
		ReleasePacket(q)
	})
}
