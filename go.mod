module hwatch

go 1.22
