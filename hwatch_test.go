package hwatch

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hwatch/internal/sim"
)

func TestFacadeRunDumbbell(t *testing.T) {
	p := PaperDumbbell(3, 3)
	p.Duration = 200 * sim.Millisecond
	p.Epochs = 1
	p.FirstEpoch = 20 * sim.Millisecond
	p.ByteBuffers = true
	r := RunDumbbell(HWatch, p)
	if r.ShortDone != r.ShortAll || r.ShortAll != 3 {
		t.Fatalf("short flows %d/%d", r.ShortDone, r.ShortAll)
	}
	if r.ShimStats == nil || r.ShimStats.ProbesSent == 0 {
		t.Fatal("HWatch run carries no shim statistics")
	}
	if r.LongGoodputBps.N() != 3 {
		t.Fatalf("long flows measured: %d", r.LongGoodputBps.N())
	}
}

func TestFacadeSchemes(t *testing.T) {
	if got := AllSchemes(); len(got) != 4 {
		t.Fatalf("AllSchemes = %v", got)
	}
	if HWatch.String() != "TCP-HWATCH" || DCTCP.String() != "DCTCP" {
		t.Fatal("scheme labels broken")
	}
}

func TestFacadeConfigs(t *testing.T) {
	tc := DefaultTCPConfig()
	if tc.InitCwnd != 10 || tc.MinRTO != 200*sim.Millisecond {
		t.Fatalf("unexpected TCP defaults: %+v", tc)
	}
	dc := DCTCPTCPConfig()
	if !dc.ECN {
		t.Fatal("DCTCP config must enable ECN")
	}
	sc := DefaultShimConfig(100_000)
	if sc.ProbeCount != 10 || sc.ProbeWire > 38 {
		t.Fatalf("shim defaults diverge from the paper: %+v", sc)
	}
}

func TestFacadeTableAndSave(t *testing.T) {
	p := PaperDumbbell(2, 2)
	p.Duration = 500 * sim.Millisecond // room for RTO recovery of the shorts
	p.Epochs = 1
	p.FirstEpoch = 10 * sim.Millisecond
	r := RunDumbbell(DropTail, p)
	if r.ShortFCTms.N() == 0 {
		t.Fatal("no short flow completed; cannot exercise CSV output")
	}
	tbl := Table([]*Run{r})
	if !strings.Contains(tbl, "TCP-DropTail") || !strings.Contains(tbl, "fct-p50ms") {
		t.Fatalf("table output: %q", tbl)
	}

	dir := t.TempDir()
	if err := SaveRun(dir, "t", r); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"t_fct_cdf.csv", "t_goodput_cdf.csv", "t_queue_bytes.csv", "t_util.csv"} {
		st, err := os.Stat(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", f)
		}
	}
}
