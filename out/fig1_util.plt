# Auto-generated: gnuplot fig1_util.plt
set terminal pngcairo size 800,600
set output "fig1_util.png"
set datafile separator ','
set title "fig1: bottleneck utilization"
set xlabel "time (ns)"
set ylabel "fraction of line rate"
set key bottom right
set grid
plot "fig1_icw1_util.csv" using 1:2 with lines lw 2 title "ICWND=1", \
     "fig1_icw5_util.csv" using 1:2 with lines lw 2 title "ICWND=5", \
     "fig1_icw10_util.csv" using 1:2 with lines lw 2 title "ICWND=10", \
     "fig1_icw15_util.csv" using 1:2 with lines lw 2 title "ICWND=15", \
     "fig1_icw20_util.csv" using 1:2 with lines lw 2 title "ICWND=20"
