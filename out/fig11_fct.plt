# Auto-generated: gnuplot fig11_fct.plt
set terminal pngcairo size 800,600
set output "fig11_fct.png"
set datafile separator ','
set title "fig11: short-flow FCT CDF"
set xlabel "FCT (ms)"
set ylabel "CDF"
set key bottom right
set grid
set logscale x
plot "fig11_tcp_fct_cdf.csv" using 1:2 with lines lw 2 title "TCP", \
     "fig11_hwatch_fct_cdf.csv" using 1:2 with lines lw 2 title "TCP-HWatch"
