# Auto-generated: gnuplot fig9_goodput.plt
set terminal pngcairo size 800,600
set output "fig9_goodput.png"
set datafile separator ','
set title "fig9: long-flow goodput CDF"
set xlabel "goodput (bit/s)"
set ylabel "CDF"
set key bottom right
set grid
plot "fig9_tcp-droptail_goodput_cdf.csv" using 1:2 with lines lw 2 title "TCP-DropTail", \
     "fig9_tcp-red_goodput_cdf.csv" using 1:2 with lines lw 2 title "TCP-RED", \
     "fig9_tcp-hwatch_goodput_cdf.csv" using 1:2 with lines lw 2 title "TCP-HWATCH", \
     "fig9_dctcp_goodput_cdf.csv" using 1:2 with lines lw 2 title "DCTCP"
