# Auto-generated: gnuplot fig2_goodput.plt
set terminal pngcairo size 800,600
set output "fig2_goodput.png"
set datafile separator ','
set title "fig2: long-flow goodput CDF"
set xlabel "goodput (bit/s)"
set ylabel "CDF"
set key bottom right
set grid
plot "fig2_dctcp_goodput_cdf.csv" using 1:2 with lines lw 2 title "DCTCP", \
     "fig2_mix_goodput_cdf.csv" using 1:2 with lines lw 2 title "MIX", \
     "fig2_mix_hwatch_goodput_cdf.csv" using 1:2 with lines lw 2 title "MIX+HWatch"
