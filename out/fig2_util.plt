# Auto-generated: gnuplot fig2_util.plt
set terminal pngcairo size 800,600
set output "fig2_util.png"
set datafile separator ','
set title "fig2: bottleneck utilization"
set xlabel "time (ns)"
set ylabel "fraction of line rate"
set key bottom right
set grid
plot "fig2_dctcp_util.csv" using 1:2 with lines lw 2 title "DCTCP", \
     "fig2_mix_util.csv" using 1:2 with lines lw 2 title "MIX", \
     "fig2_mix_hwatch_util.csv" using 1:2 with lines lw 2 title "MIX+HWatch"
