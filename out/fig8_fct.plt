# Auto-generated: gnuplot fig8_fct.plt
set terminal pngcairo size 800,600
set output "fig8_fct.png"
set datafile separator ','
set title "fig8: short-flow FCT CDF"
set xlabel "FCT (ms)"
set ylabel "CDF"
set key bottom right
set grid
set logscale x
plot "fig8_tcp-droptail_fct_cdf.csv" using 1:2 with lines lw 2 title "TCP-DropTail", \
     "fig8_tcp-red_fct_cdf.csv" using 1:2 with lines lw 2 title "TCP-RED", \
     "fig8_tcp-hwatch_fct_cdf.csv" using 1:2 with lines lw 2 title "TCP-HWATCH", \
     "fig8_dctcp_fct_cdf.csv" using 1:2 with lines lw 2 title "DCTCP"
