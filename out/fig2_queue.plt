# Auto-generated: gnuplot fig2_queue.plt
set terminal pngcairo size 800,600
set output "fig2_queue.png"
set datafile separator ','
set title "fig2: bottleneck queue"
set xlabel "time (ns)"
set ylabel "queue (bytes)"
set key bottom right
set grid
plot "fig2_dctcp_queue_bytes.csv" using 1:2 with lines lw 2 title "DCTCP", \
     "fig2_mix_queue_bytes.csv" using 1:2 with lines lw 2 title "MIX", \
     "fig2_mix_hwatch_queue_bytes.csv" using 1:2 with lines lw 2 title "MIX+HWatch"
