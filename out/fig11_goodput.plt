# Auto-generated: gnuplot fig11_goodput.plt
set terminal pngcairo size 800,600
set output "fig11_goodput.png"
set datafile separator ','
set title "fig11: long-flow goodput CDF"
set xlabel "goodput (bit/s)"
set ylabel "CDF"
set key bottom right
set grid
plot "fig11_tcp_goodput_cdf.csv" using 1:2 with lines lw 2 title "TCP", \
     "fig11_hwatch_goodput_cdf.csv" using 1:2 with lines lw 2 title "TCP-HWatch"
