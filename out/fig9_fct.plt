# Auto-generated: gnuplot fig9_fct.plt
set terminal pngcairo size 800,600
set output "fig9_fct.png"
set datafile separator ','
set title "fig9: short-flow FCT CDF"
set xlabel "FCT (ms)"
set ylabel "CDF"
set key bottom right
set grid
set logscale x
plot "fig9_tcp-droptail_fct_cdf.csv" using 1:2 with lines lw 2 title "TCP-DropTail", \
     "fig9_tcp-red_fct_cdf.csv" using 1:2 with lines lw 2 title "TCP-RED", \
     "fig9_tcp-hwatch_fct_cdf.csv" using 1:2 with lines lw 2 title "TCP-HWATCH", \
     "fig9_dctcp_fct_cdf.csv" using 1:2 with lines lw 2 title "DCTCP"
