# Auto-generated: gnuplot fig11_queue.plt
set terminal pngcairo size 800,600
set output "fig11_queue.png"
set datafile separator ','
set title "fig11: bottleneck queue"
set xlabel "time (ns)"
set ylabel "queue (bytes)"
set key bottom right
set grid
plot "fig11_tcp_queue_bytes.csv" using 1:2 with lines lw 2 title "TCP", \
     "fig11_hwatch_queue_bytes.csv" using 1:2 with lines lw 2 title "TCP-HWatch"
