# Auto-generated: gnuplot fig2_fct.plt
set terminal pngcairo size 800,600
set output "fig2_fct.png"
set datafile separator ','
set title "fig2: short-flow FCT CDF"
set xlabel "FCT (ms)"
set ylabel "CDF"
set key bottom right
set grid
set logscale x
plot "fig2_dctcp_fct_cdf.csv" using 1:2 with lines lw 2 title "DCTCP", \
     "fig2_mix_fct_cdf.csv" using 1:2 with lines lw 2 title "MIX", \
     "fig2_mix_hwatch_fct_cdf.csv" using 1:2 with lines lw 2 title "MIX+HWatch"
