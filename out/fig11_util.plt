# Auto-generated: gnuplot fig11_util.plt
set terminal pngcairo size 800,600
set output "fig11_util.png"
set datafile separator ','
set title "fig11: bottleneck utilization"
set xlabel "time (ns)"
set ylabel "fraction of line rate"
set key bottom right
set grid
plot "fig11_tcp_util.csv" using 1:2 with lines lw 2 title "TCP", \
     "fig11_hwatch_util.csv" using 1:2 with lines lw 2 title "TCP-HWatch"
