# Auto-generated: gnuplot fig9_queue.plt
set terminal pngcairo size 800,600
set output "fig9_queue.png"
set datafile separator ','
set title "fig9: bottleneck queue"
set xlabel "time (ns)"
set ylabel "queue (bytes)"
set key bottom right
set grid
plot "fig9_tcp-droptail_queue_bytes.csv" using 1:2 with lines lw 2 title "TCP-DropTail", \
     "fig9_tcp-red_queue_bytes.csv" using 1:2 with lines lw 2 title "TCP-RED", \
     "fig9_tcp-hwatch_queue_bytes.csv" using 1:2 with lines lw 2 title "TCP-HWATCH", \
     "fig9_dctcp_queue_bytes.csv" using 1:2 with lines lw 2 title "DCTCP"
