# Auto-generated: gnuplot fig9_util.plt
set terminal pngcairo size 800,600
set output "fig9_util.png"
set datafile separator ','
set title "fig9: bottleneck utilization"
set xlabel "time (ns)"
set ylabel "fraction of line rate"
set key bottom right
set grid
plot "fig9_tcp-droptail_util.csv" using 1:2 with lines lw 2 title "TCP-DropTail", \
     "fig9_tcp-red_util.csv" using 1:2 with lines lw 2 title "TCP-RED", \
     "fig9_tcp-hwatch_util.csv" using 1:2 with lines lw 2 title "TCP-HWATCH", \
     "fig9_dctcp_util.csv" using 1:2 with lines lw 2 title "DCTCP"
