# Auto-generated: gnuplot fig8_goodput.plt
set terminal pngcairo size 800,600
set output "fig8_goodput.png"
set datafile separator ','
set title "fig8: long-flow goodput CDF"
set xlabel "goodput (bit/s)"
set ylabel "CDF"
set key bottom right
set grid
plot "fig8_tcp-droptail_goodput_cdf.csv" using 1:2 with lines lw 2 title "TCP-DropTail", \
     "fig8_tcp-red_goodput_cdf.csv" using 1:2 with lines lw 2 title "TCP-RED", \
     "fig8_tcp-hwatch_goodput_cdf.csv" using 1:2 with lines lw 2 title "TCP-HWATCH", \
     "fig8_dctcp_goodput_cdf.csv" using 1:2 with lines lw 2 title "DCTCP"
