# Auto-generated: gnuplot fig8_util.plt
set terminal pngcairo size 800,600
set output "fig8_util.png"
set datafile separator ','
set title "fig8: bottleneck utilization"
set xlabel "time (ns)"
set ylabel "fraction of line rate"
set key bottom right
set grid
plot "fig8_tcp-droptail_util.csv" using 1:2 with lines lw 2 title "TCP-DropTail", \
     "fig8_tcp-red_util.csv" using 1:2 with lines lw 2 title "TCP-RED", \
     "fig8_tcp-hwatch_util.csv" using 1:2 with lines lw 2 title "TCP-HWATCH", \
     "fig8_dctcp_util.csv" using 1:2 with lines lw 2 title "DCTCP"
