# Auto-generated: gnuplot fig1_goodput.plt
set terminal pngcairo size 800,600
set output "fig1_goodput.png"
set datafile separator ','
set title "fig1: long-flow goodput CDF"
set xlabel "goodput (bit/s)"
set ylabel "CDF"
set key bottom right
set grid
plot "fig1_icw1_goodput_cdf.csv" using 1:2 with lines lw 2 title "ICWND=1", \
     "fig1_icw5_goodput_cdf.csv" using 1:2 with lines lw 2 title "ICWND=5", \
     "fig1_icw10_goodput_cdf.csv" using 1:2 with lines lw 2 title "ICWND=10", \
     "fig1_icw15_goodput_cdf.csv" using 1:2 with lines lw 2 title "ICWND=15", \
     "fig1_icw20_goodput_cdf.csv" using 1:2 with lines lw 2 title "ICWND=20"
