# Auto-generated: gnuplot fig1_queue.plt
set terminal pngcairo size 800,600
set output "fig1_queue.png"
set datafile separator ','
set title "fig1: bottleneck queue"
set xlabel "time (ns)"
set ylabel "queue (bytes)"
set key bottom right
set grid
plot "fig1_icw1_queue_bytes.csv" using 1:2 with lines lw 2 title "ICWND=1", \
     "fig1_icw5_queue_bytes.csv" using 1:2 with lines lw 2 title "ICWND=5", \
     "fig1_icw10_queue_bytes.csv" using 1:2 with lines lw 2 title "ICWND=10", \
     "fig1_icw15_queue_bytes.csv" using 1:2 with lines lw 2 title "ICWND=15", \
     "fig1_icw20_queue_bytes.csv" using 1:2 with lines lw 2 title "ICWND=20"
