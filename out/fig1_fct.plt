# Auto-generated: gnuplot fig1_fct.plt
set terminal pngcairo size 800,600
set output "fig1_fct.png"
set datafile separator ','
set title "fig1: short-flow FCT CDF"
set xlabel "FCT (ms)"
set ylabel "CDF"
set key bottom right
set grid
set logscale x
plot "fig1_icw1_fct_cdf.csv" using 1:2 with lines lw 2 title "ICWND=1", \
     "fig1_icw5_fct_cdf.csv" using 1:2 with lines lw 2 title "ICWND=5", \
     "fig1_icw10_fct_cdf.csv" using 1:2 with lines lw 2 title "ICWND=10", \
     "fig1_icw15_fct_cdf.csv" using 1:2 with lines lw 2 title "ICWND=15", \
     "fig1_icw20_fct_cdf.csv" using 1:2 with lines lw 2 title "ICWND=20"
