# Auto-generated: gnuplot fig8_queue.plt
set terminal pngcairo size 800,600
set output "fig8_queue.png"
set datafile separator ','
set title "fig8: bottleneck queue"
set xlabel "time (ns)"
set ylabel "queue (bytes)"
set key bottom right
set grid
plot "fig8_tcp-droptail_queue_bytes.csv" using 1:2 with lines lw 2 title "TCP-DropTail", \
     "fig8_tcp-red_queue_bytes.csv" using 1:2 with lines lw 2 title "TCP-RED", \
     "fig8_tcp-hwatch_queue_bytes.csv" using 1:2 with lines lw 2 title "TCP-HWATCH", \
     "fig8_dctcp_queue_bytes.csv" using 1:2 with lines lw 2 title "DCTCP"
