// Multitenant: the coexistence problem of Fig. 2. Tenants in a shared
// cluster run different congestion controllers (DCTCP, ECN-responsive
// NewReno, and a NewReno that marks its packets ECT but ignores ECE);
// DCTCP alone regulates the queue, the MIX does not, and short-flow
// latency variance explodes — motivating a hypervisor-level mechanism
// that works regardless of the guest stack.
package main

import (
	"fmt"

	"hwatch"
)

func main() {
	fmt.Println("Multi-tenant coexistence (Fig. 2 scenario, 60% scale)")
	fmt.Println()

	res := hwatch.Fig2(0.6)
	fmt.Print(hwatch.Table([]*hwatch.Run{res.DCTCP, res.Mix}))
	fmt.Println()

	fmt.Printf("short-flow FCT variance:  DCTCP alone %10.1f ms^2\n", res.DCTCP.ShortFCTms.Var())
	fmt.Printf("                          MIX         %10.1f ms^2\n", res.Mix.ShortFCTms.Var())
	fmt.Printf("standing queue (packets): DCTCP alone %10.0f\n", res.DCTCP.QueuePkts.Mean())
	fmt.Printf("                          MIX         %10.0f\n", res.Mix.QueuePkts.Mean())
	fmt.Printf("bottleneck utilization:   DCTCP alone %10.2f\n", res.DCTCP.Utilization.Mean())
	fmt.Printf("                          MIX         %10.2f\n", res.Mix.Utilization.Mean())
	fmt.Println()
	fmt.Println("The MIX keeps the link just as busy, but the queue is no longer held")
	fmt.Println("at the marking threshold, so small flows drown behind the deaf tenant.")
}
