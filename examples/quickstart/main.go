// Quickstart: run the paper's headline comparison (Fig. 8, scaled down so
// it finishes in a few seconds) and print the table. This is the smallest
// useful hwatch program.
package main

import (
	"fmt"

	"hwatch"
)

func main() {
	fmt.Println("HWatch quickstart: 50-source scheme comparison at 40% scale")
	fmt.Println("(use cmd/figgen for the full paper-scale regeneration)")
	fmt.Println()

	res := hwatch.Fig8(0.4)
	var runs []*hwatch.Run
	for _, s := range res.Order {
		runs = append(runs, res.Runs[s])
	}
	fmt.Print(hwatch.Table(runs))

	hw := res.Runs[hwatch.HWatch]
	fmt.Println()
	fmt.Printf("HWatch finished %d/%d short flows with %d timeouts and %d drops.\n",
		hw.ShortDone, hw.ShortAll, hw.Timeouts, hw.Drops)
	if hw.ShimStats != nil {
		fmt.Printf("The shims sent %d probes, stamped %d SYN-ACKs, paced %d, and rewrote %d ACK windows.\n",
			hw.ShimStats.ProbesSent, hw.ShimStats.SynAcksStamped,
			hw.ShimStats.SynAcksPaced, hw.ShimStats.RwndRewrites)
	}
}
