// Testbed: the Section VI experiment — a 4-rack, 84-host leaf-spine
// fabric where three racks of web servers answer parallel 11.5 KB fetches
// from the fourth rack while 42 iperf elephants cross the same spine.
// Runs the fabric twice (plain TCP, then TCP with HWatch shims on every
// host) and reports the Fig. 11 comparison.
package main

import (
	"fmt"

	"hwatch"
)

func main() {
	fmt.Println("Leaf-spine testbed (Fig. 11 scenario, reduced web load for a quick run)")
	fmt.Println()

	p := hwatch.PaperTestbed()
	p.Parallel = 4 // 504 fetches per epoch instead of 1260
	p.Epochs = 3
	p.Duration = p.FirstEpoch + int64(p.Epochs)*p.EpochInterval

	tcpRun := hwatch.RunTestbed(false, p)
	tcpRun.Label = "TCP"
	hwRun := hwatch.RunTestbed(true, p)
	hwRun.Label = "TCP-HWatch"

	fmt.Print(hwatch.Table([]*hwatch.Run{tcpRun, hwRun}))
	fmt.Println()

	imp := tcpRun.ShortFCTms.Mean() / hwRun.ShortFCTms.Mean()
	fmt.Printf("mean web response time improved %.1fx (%.1f ms -> %.1f ms)\n",
		imp, tcpRun.ShortFCTms.Mean(), hwRun.ShortFCTms.Mean())
	fmt.Printf("web fetches finished: TCP %d/%d, HWatch %d/%d\n",
		tcpRun.ShortDone, tcpRun.ShortAll, hwRun.ShortDone, hwRun.ShortAll)
	fmt.Printf("per-elephant goodput: TCP %.1f Mb/s, HWatch %.1f Mb/s\n",
		tcpRun.LongGoodputBps.Mean()/1e6, hwRun.LongGoodputBps.Mean()/1e6)
}
