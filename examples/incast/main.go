// Incast: sweep the incast degree (number of synchronized short-flow
// sources) and show where each scheme falls off the latency cliff — the
// paper's core motivation. HWatch's probe-derived start window plus
// SYN-ACK pacing keeps completion times flat where stock stacks hit the
// 200 ms retransmission timeout.
package main

import (
	"fmt"

	"hwatch"
)

func main() {
	fmt.Println("Incast cliff: mean short-flow FCT (ms) vs number of synchronized senders")
	fmt.Println("(10 KB flows into one 10 Gb/s port with a 250-packet buffer; '-' = flows unfinished)")
	fmt.Println()

	p := hwatch.DefaultIncastSweep()
	schemes := []hwatch.Scheme{hwatch.DropTail, hwatch.DCTCP, hwatch.HWatch}
	points := hwatch.RunIncastSweep(schemes, p)

	fmt.Printf("%-14s", "senders")
	for _, d := range p.Degrees {
		fmt.Printf("%10d", d)
	}
	fmt.Println()

	i := 0
	for _, s := range schemes {
		fmt.Printf("%-14s", s)
		for range p.Degrees {
			r := points[i]
			i++
			if r.Done < r.All {
				fmt.Printf("%9.1f-", r.FCTms.Mean())
				continue
			}
			fmt.Printf("%10.2f", r.FCTms.Mean())
		}
		fmt.Println()
	}
}
