// Fattree: HWatch beyond the paper's dumbbell — repeated 15-to-1 incast
// rounds on a k=4 fat tree (the Al-Fares topology the paper cites), with
// and without HWatch shims. The aggregator's edge link is the bottleneck;
// the cautious start + SYN-ACK pacing keep the incast out of the RTO
// regime on a multi-stage fabric too.
package main

import (
	"fmt"

	"hwatch/internal/aqm"
	"hwatch/internal/core"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/stats"
	"hwatch/internal/tcp"
	"hwatch/internal/topo"
)

const (
	port     = 80
	flowSize = 50_000
	rounds   = 3
)

func main() {
	fmt.Println("k=4 fat tree, 15-to-1 incast of 50 KB flows, 3 rounds")
	fmt.Println()
	plain := runShuffle(false)
	hw := runShuffle(true)

	fmt.Printf("%-12s %12s %12s %12s %10s\n", "config", "fct-p50(ms)", "fct-p99(ms)", "fct-mean", "done")
	for _, r := range []result{plain, hw} {
		fmt.Printf("%-12s %12.2f %12.2f %12.2f %6d/%d\n",
			r.name, r.fct.Quantile(0.5), r.fct.Quantile(0.99), r.fct.Mean(), r.done, r.total)
	}
	fmt.Println()
	fmt.Printf("HWatch timeouts: %d, plain TCP timeouts: %d\n", hw.timeouts, plain.timeouts)
}

type result struct {
	name        string
	fct         stats.Sample
	done, total int
	timeouts    int64
}

func runShuffle(withShim bool) result {
	mkQ := func() netem.Queue {
		if withShim {
			return aqm.NewMarkThresholdBytes(100*1500, 20*1500)
		}
		return aqm.NewDropTailBytes(100 * 1500)
	}
	ft := topo.NewFatTree(topo.FatTreeConfig{
		K:       4,
		RateBps: 1e9,
		Delay:   10 * sim.Microsecond,
		Q:       mkQ,
	})
	hosts := ft.AllHosts()
	if withShim {
		shimCfg := core.DefaultConfig(120 * sim.Microsecond)
		for _, h := range hosts {
			core.Attach(h, shimCfg)
		}
	}

	tcfg := tcp.DefaultConfig()
	for _, h := range hosts {
		h.Listen(port, tcp.NewListener(h, tcfg, nil))
	}

	r := result{name: "TCP"}
	if withShim {
		r.name = "TCP-HWatch"
	}
	var timeouts int64
	rng := sim.NewRNG(11)
	agg := hosts[0]
	for round := 0; round < rounds; round++ {
		at := int64(round) * 200 * sim.Millisecond
		for _, src := range hosts[1:] {
			src, dst := src, agg
			r.total++
			start := at + rng.UniformRange(0, 50*sim.Microsecond)
			ft.Net.Eng.At(start, func() {
				s := tcp.NewSender(src, dst.ID, port, flowSize, tcfg)
				s.OnComplete = func(fct int64) {
					r.done++
					r.fct.Add(float64(fct) / float64(sim.Millisecond))
					timeouts += s.Stats().Timeouts
				}
				s.Start()
			})
		}
	}
	ft.Net.Eng.RunUntil(2 * sim.Second)
	r.timeouts = timeouts
	return r
}
