// Package hwatch is a faithful, self-contained reproduction of
// "HWatch: Reducing Latency in Multi-Tenant Data Centers via Cautious
// Congestion Watch" (Abdelmoniem, Bensaou, Susanto — ICPP 2020).
//
// It bundles a deterministic packet-level network simulator (the ns-2
// stand-in), segment-level TCP stacks (NewReno, ECN-responsive and
// non-responsive flavours, DCTCP), the AQM disciplines of commodity
// switches (DropTail, RED, WRED, DCTCP threshold marking), and — the
// paper's contribution — the HWatch hypervisor shim that watches ECN
// statistics and steers unmodified guests by rewriting TCP receive
// windows and pacing connection setup.
//
// The package surface mirrors the paper's evaluation: Fig1 through Fig11
// regenerate each data figure, RunDumbbell/RunTestbed run single scenarios,
// and the Ablation functions quantify the design choices. All runs are
// deterministic in their Seed.
//
//	res := hwatch.Fig8(1.0) // the 50-source scheme comparison
//	fmt.Print(hwatch.Table([]*hwatch.Run{
//	    res.Runs[hwatch.DropTail], res.Runs[hwatch.RED],
//	    res.Runs[hwatch.HWatch], res.Runs[hwatch.DCTCP],
//	}))
package hwatch

import (
	"context"

	"hwatch/internal/core"
	"hwatch/internal/experiments"
	"hwatch/internal/faults"
	"hwatch/internal/harness"
	"hwatch/internal/scenario"
	"hwatch/internal/stats"
	"hwatch/internal/tcp"
)

// SetParallel bounds how many scenario runs execute concurrently across
// every figure, ablation and sweep (n <= 0 restores the default,
// GOMAXPROCS). Parallelism never affects results: every run owns its
// simulation engine and seeded RNG, so the same spec and seed digest
// identically at any setting.
func SetParallel(n int) { experiments.SetParallel(n) }

// SetShards sets how many engine shards every subsequent run partitions
// its fabric across when its scenario does not say (n <= 1 restores the
// default single-loop engine). Sharding is an execution detail, never a
// scenario parameter: the conservative-lookahead windows and deterministic
// merge keep every run's digest byte-identical at any shard count and any
// GOMAXPROCS — the only thing that changes is wall-clock time.
func SetShards(n int) { scenario.SetDefaultShards(n) }

// SetInvariantChecks enables the physical-invariant checker (packet
// conservation at the bottleneck, TCP sequence monotonicity, cwnd/rwnd
// floors) on every subsequent run; findings land in
// Run.InvariantViolations.
func SetInvariantChecks(on bool) { experiments.SetInvariantChecks(on) }

// SeedFor derives a deterministic per-run seed from a spec identity string
// and a base seed (FNV-64a of the spec, mixed with the base through one
// splitmix64 step).
func SeedFor(spec string, base int64) int64 { return harness.SeedFor(spec, base) }

// Scheme names one of the registered end-to-end systems. The value is
// the registry key ("dctcp", "hwatch", ...); String renders the display
// label the figures print.
type Scheme = experiments.Scheme

// The paper's four schemes (Figs. 8-9).
const (
	DropTail = experiments.SchemeDropTail
	RED      = experiments.SchemeRED
	DCTCP    = experiments.SchemeDCTCP
	HWatch   = experiments.SchemeHWatch
)

// Extension schemes registered out of the box.
const (
	CubicRED  = scenario.CubicRED
	DCTCPSack = scenario.DCTCPSack
	HWatchOvS = scenario.HWatchOvS
	RenoECN   = scenario.RenoECN
	RenoDeaf  = scenario.RenoDeaf
)

// AllSchemes lists the comparison set in the paper's order.
func AllSchemes() []Scheme { return experiments.AllSchemes() }

// SchemeDef is one registered scheme: display label plus factories for
// the guest stack, the bottleneck queue discipline and an optional
// hypervisor-shim deployment.
type SchemeDef = scenario.Definition

// SchemeEnv carries the fabric-level quantities a scheme definition may
// need (buffer sizes, mean packet time, base RTT, run RNG and clock).
type SchemeEnv = scenario.Env

// ShimDeployment installs a scheme's hypervisor shims on a scenario's
// hosts and returns them for stats aggregation.
type ShimDeployment = scenario.Deployment

// RegisterScheme adds a scheme definition to the registry; it becomes
// available to RunDumbbell, JSON specs and cmd/hwatchsim -scheme without
// touching any figure code. Panics on duplicate or invalid definitions.
func RegisterScheme(def SchemeDef) { scenario.Register(def) }

// SchemeNames lists every registered scheme name, sorted.
func SchemeNames() []string { return scenario.Names() }

// Schemes lists every registered scheme definition, sorted by name.
func Schemes() []SchemeDef { return scenario.Definitions() }

// LookupScheme returns the definition registered under name.
func LookupScheme(name string) (SchemeDef, bool) { return scenario.Lookup(name) }

// Scenario is the declarative description the unified run path executes:
// a topology kind, one or more registered schemes (more than one = mixed
// tenancy), a workload and observers. The figure entry points are thin
// wrappers over it.
type Scenario = scenario.Spec

// SchemeShare assigns a scheme a relative host share in a mixed-tenancy
// Scenario.
type SchemeShare = scenario.Share

// Scenario topology kinds.
const (
	KindDumbbell = scenario.KindDumbbell
	KindTestbed  = scenario.KindTestbed
)

// FaultSchedule is a deterministic fault timeline a Scenario arms on its
// fabric (link flaps, ECN blackholes, shim crashes, probe blackouts,
// burst-loss windows, and the impairment matrix: corruption, duplication,
// reordering, jitter, rate limiting); FaultEvent is one entry, optionally
// recurring (FaultRecurrence) or with random per-occurrence targets
// (Pick). Same seed + spec + schedule ⇒ identical digest.
type (
	FaultSchedule   = faults.Schedule
	FaultEvent      = faults.Event
	FaultRecurrence = faults.Recurrence
	FaultImpair     = faults.ImpairParams
	FaultKindInfo   = faults.KindInfo
)

// FaultKinds lists every registered fault kind with a one-line doc, in
// the order Validate's error messages use (hwatchsim -list-faults).
func FaultKinds() []FaultKindInfo { return faults.Infos() }

// FaultSpec is the JSON (millisecond-unit) form of one fault event, as
// used in spec files' "faults" arrays and hwatchsim -faults files.
type FaultSpec = scenario.FaultSpec

// LoadFaults reads and renders a standalone JSON fault-schedule file.
func LoadFaults(path string) (FaultSchedule, error) { return scenario.LoadFaults(path) }

// RenderFaults converts JSON fault specs into an engine-ready schedule.
func RenderFaults(specs []FaultSpec) (FaultSchedule, error) { return scenario.RenderFaults(specs) }

// RecoveryObserver is the observer a faulted Scenario appends
// automatically: it asserts every finite flow completes, queues drain and
// no shim state leaks once the last fault clears.
type RecoveryObserver = scenario.RecoveryObserver

// Run is one scenario's measured outcome: the exact series the paper's
// figures plot (FCT CDFs, goodput CDFs, queue and utilization time series)
// plus drop/mark/timeout totals.
type Run = experiments.Run

// DumbbellParams parameterizes the ns-2-style scenarios (Figs. 1, 2, 8, 9).
type DumbbellParams = experiments.DumbbellParams

// TestbedParams parameterizes the leaf-spine testbed scenario (Fig. 11).
type TestbedParams = experiments.TestbedParams

// ShimConfig is the HWatch hypervisor-module configuration (probe train,
// window policy, SYN-ACK pacing, ECT dyeing).
type ShimConfig = core.Config

// TCPConfig is a guest stack configuration.
type TCPConfig = tcp.Config

// Sample and TimeSeries are the measurement containers inside Run.
type (
	Sample     = stats.Sample
	TimeSeries = stats.TimeSeries
)

// AblationPoint is one row of an ablation sweep.
type AblationPoint = experiments.AblationPoint

// PaperDumbbell returns the paper's dumbbell parameters (10 Gb/s, 100 us
// RTT, 250-packet buffer, 20% marking, minRTO 200 ms) for the given
// long/short source split.
func PaperDumbbell(longN, shortN int) DumbbellParams {
	return experiments.PaperDumbbell(longN, shortN)
}

// PaperTestbed returns the paper's 4-rack 84-host testbed parameters.
func PaperTestbed() TestbedParams { return experiments.PaperTestbed() }

// DefaultShimConfig returns the paper's HWatch deployment parameters for a
// fabric with the given base RTT (ns).
func DefaultShimConfig(baseRTT int64) ShimConfig { return core.DefaultConfig(baseRTT) }

// DefaultTCPConfig mirrors a Linux data-center host's stack (MSS for
// 1500-byte frames, ICW 10, minRTO 200 ms).
func DefaultTCPConfig() TCPConfig { return tcp.DefaultConfig() }

// DCTCPTCPConfig returns the DCTCP guest configuration.
func DCTCPTCPConfig() TCPConfig { return tcp.DCTCPConfig() }

// RunDumbbell executes one scheme on the dumbbell scenario.
func RunDumbbell(s Scheme, p DumbbellParams) *Run { return experiments.RunDumbbell(s, p) }

// RunTestbed executes the leaf-spine scenario with or without HWatch.
func RunTestbed(withHWatch bool, p TestbedParams) *Run {
	return experiments.RunTestbed(withHWatch, p)
}

// Figure results.
type (
	Fig1Result  = experiments.Fig1Result
	Fig2Result  = experiments.Fig2Result
	Fig8Result  = experiments.Fig8Result
	Fig11Result = experiments.Fig11Result
)

// Fig1 regenerates the DCTCP initial-window study (Fig. 1a-d).
// scale in (0,1] shrinks sources/duration for quick runs; 1.0 is the
// paper's scale.
func Fig1(scale float64) *Fig1Result { return experiments.Fig1(scale) }

// Fig2 regenerates the congestion-controller coexistence study (Fig. 2a-d).
func Fig2(scale float64) *Fig2Result { return experiments.Fig2(scale) }

// Fig8 regenerates the 50-source scheme comparison (Fig. 8a-d).
func Fig8(scale float64) *Fig8Result { return experiments.Fig8(scale) }

// Fig9 regenerates the 100-source scalability comparison (Fig. 9a-d).
func Fig9(scale float64) *Fig8Result { return experiments.Fig9(scale) }

// Fig11 regenerates the testbed experiment (Fig. 11a-b).
func Fig11(scale float64) *Fig11Result { return experiments.Fig11(scale) }

// FigNames lists the figures FigRuns (and the hwatchd "fig" job kind) can
// execute, in paper order.
func FigNames() []string { return experiments.FigNames() }

// FigRuns executes one named figure under ctx and returns its runs in the
// figure's canonical order; it is the service-facing flat entry point.
func FigRuns(ctx context.Context, name string, scale float64) ([]*Run, error) {
	return experiments.FigRuns(ctx, name, scale)
}

// Ablations (see DESIGN.md §5).
func AblationProbes(scale float64) []AblationPoint    { return experiments.AblationProbes(scale) }
func AblationThreshold(scale float64) []AblationPoint { return experiments.AblationThreshold(scale) }
func AblationStartWindow(scale float64) []AblationPoint {
	return experiments.AblationStartWindow(scale)
}
func AblationBatches(scale float64) []AblationPoint { return experiments.AblationBatches(scale) }
func AblationPacing(scale float64) []AblationPoint  { return experiments.AblationPacing(scale) }
func AblationGuestStacks(scale float64) []AblationPoint {
	return experiments.AblationGuestStacks(scale)
}

// EmpiricalParams and EmpiricalResult belong to the trace-driven extension
// study (web-search / data-mining flow sizes under Poisson load).
type (
	EmpiricalParams = experiments.EmpiricalParams
	EmpiricalResult = experiments.EmpiricalResult
)

// DefaultEmpirical returns the web-search Poisson workload on the paper's
// dumbbell.
func DefaultEmpirical() EmpiricalParams { return experiments.DefaultEmpirical() }

// RunEmpirical executes the trace-driven study for the given schemes.
func RunEmpirical(schemes []Scheme, p EmpiricalParams) []EmpiricalResult {
	return experiments.RunEmpirical(schemes, p)
}

// CoflowParams and CoflowResult belong to the job-completion extension
// study (partition-aggregate jobs of parallel flows; the application-level
// metric the paper's introduction motivates).
type (
	CoflowParams = experiments.CoflowParams
	CoflowResult = experiments.CoflowResult
)

// DefaultCoflow returns partition-aggregate jobs on the paper's dumbbell.
func DefaultCoflow() CoflowParams { return experiments.DefaultCoflow() }

// RunCoflow executes the job-completion study for the given schemes.
func RunCoflow(schemes []Scheme, p CoflowParams) []CoflowResult {
	return experiments.RunCoflow(schemes, p)
}

// IncastSweepParams and IncastPoint belong to the incast-cliff sweep: FCT
// vs. number of synchronized senders, per scheme.
type (
	IncastSweepParams = experiments.IncastSweepParams
	IncastPoint       = experiments.IncastPoint
)

// DefaultIncastSweep sweeps degrees 8-64 on the paper's dumbbell.
func DefaultIncastSweep() IncastSweepParams { return experiments.DefaultIncastSweep() }

// RunIncastSweep executes the cliff sweep for the given schemes.
func RunIncastSweep(schemes []Scheme, p IncastSweepParams) []IncastPoint {
	return experiments.RunIncastSweep(schemes, p)
}

// Rung is one step of the benchmark scale ladder: a named scenario at a
// fixed multiple of the paper's testbed (1x/10x/100x) or an open-loop
// incast storm drawn from an empirical flow-size CDF. Rungs back the
// bench-ladder regression gate (`make bench-ladder`, cmd/benchdiff) and
// carry their own golden digests.
type Rung = scenario.Rung

// Rungs lists the registered ladder rungs, bottom to top.
func Rungs() []Rung { return scenario.Rungs() }

// RungNames lists the registered rung names, sorted.
func RungNames() []string { return scenario.RungNames() }

// LookupRung finds a ladder rung by name ("ladder/10x", "storm/websearch").
func LookupRung(name string) (Rung, bool) { return scenario.LookupRung(name) }

// RunRung executes a registered ladder rung at the given scale (1 = the
// full rung; smaller values shrink sources/flows proportionally).
func RunRung(name string, scale float64) (*Run, error) { return scenario.RunRung(name, scale) }

// RegisterRung adds a rung to the ladder registry; it becomes available
// to RunRung, `hwatchsim -exp ladder` and the bench-ladder tooling.
// Panics on duplicate names.
func RegisterRung(r Rung) { scenario.RegisterRung(r) }

// Spec is a JSON-file description of a runnable scenario (cmd/hwatchsim
// -exp spec -spec file.json).
type Spec = experiments.Spec

// LoadSpec reads and validates a scenario spec from a JSON file.
func LoadSpec(path string) (*Spec, error) { return experiments.LoadSpec(path) }

// ParseSpec validates a scenario spec from JSON bytes.
func ParseSpec(raw []byte) (*Spec, error) { return experiments.ParseSpec(raw) }

// Table renders runs as an aligned comparison table.
func Table(runs []*Run) string { return experiments.Table(runs) }

// JSON renders runs as an indented JSON array of summaries.
func JSON(runs []*Run) (string, error) { return experiments.JSON(runs) }

// SaveRun writes a run's figure series (FCT CDF, goodput CDF, queue and
// utilization series) as CSV files under dir with the given prefix.
func SaveRun(dir, prefix string, r *Run) error { return experiments.SaveRun(dir, prefix, r) }

// WriteFigurePlots emits gnuplot scripts rendering the standard four-panel
// figure from curves saved by SaveRun: `gnuplot out/<fig>_fct.plt` etc.
func WriteFigurePlots(dir, figName string, labels, prefixes []string) error {
	return experiments.WriteFigurePlots(dir, figName, labels, prefixes)
}
