// Command hwatchvet runs the repo's static-analysis suite: the seven
// custom contract analyzers (detrand, pktown, schedclosure, lockscope,
// hookpure, ctxflow, hwatchdirective — see DESIGN.md §6f and §6k) plus a
// curated set of vendored standard go/analysis passes, including the
// SSA-backed nilness and unusedwrite.
//
// Usage:
//
//	go run ./cmd/hwatchvet ./...        # analyze packages (the common case)
//	go run ./cmd/hwatchvet -json ./...  # one merged JSON document on stdout
//	go run ./cmd/hwatchvet help         # list analyzers
//	go run ./cmd/hwatchvet help detrand # analyzer detail + flags
//
// The binary speaks the go vet unitchecker protocol: when invoked by the
// go command with -V=full / -flags / a *.cfg argument it behaves as a
// vet tool. For package-pattern arguments it re-executes itself through
// `go vet -vettool=<self>` so the build system handles loading, export
// data and caching — this is how a multichecker works without network
// access to the full x/tools module.
//
// In -json mode the per-package JSON objects the unitchecker emits are
// merged into a single {package: {analyzer: [diagnostics]}} document on
// stdout, and the exit code is 1 when any diagnostic (or analyzer error)
// is present — unlike plain `go vet -json`, which always exits 0, so CI
// can gate on it directly.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"hwatch/internal/analysis/suite"
)

func main() {
	args := os.Args[1:]
	if isUnitcheckerInvocation(args) {
		unitchecker.Main(suite.All()...) // does not return
	}

	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hwatchvet: cannot locate own executable: %v\n", err)
		os.Exit(1)
	}
	jsonMode, args := splitJSONFlag(args)
	if len(args) == 0 {
		args = []string{"./..."}
	}
	if jsonMode {
		os.Exit(runJSON(self, args))
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "hwatchvet: %v\n", err)
		os.Exit(1)
	}
}

// splitJSONFlag strips -json / --json from the argument list.
func splitJSONFlag(args []string) (bool, []string) {
	var rest []string
	found := false
	for _, a := range args {
		if a == "-json" || a == "--json" {
			found = true
			continue
		}
		rest = append(rest, a)
	}
	return found, rest
}

// runJSON drives `go vet -json` and merges its per-package output (a
// sequence of JSON objects interleaved with `# package` comment lines on
// stderr) into one document on stdout. Returns the process exit code.
func runJSON(self string, patterns []string) int {
	cmd := exec.Command("go", append([]string{"vet", "-json", "-vettool=" + self}, patterns...)...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		if _, ok := err.(*exec.ExitError); !ok {
			fmt.Fprintf(os.Stderr, "hwatchvet: %v\n", err)
			return 1
		}
		// A vet exit error in JSON mode means a build or loader failure:
		// the output is not a clean JSON stream, so surface it raw.
		fmt.Fprint(os.Stderr, out.String())
		return 1
	}

	merged, err := mergeJSONStream(out.String())
	if err != nil {
		fmt.Fprintf(os.Stderr, "hwatchvet: merging vet JSON output: %v\n", err)
		fmt.Fprint(os.Stderr, out.String())
		return 1
	}
	data, err := json.MarshalIndent(merged, "", "\t")
	if err != nil {
		fmt.Fprintf(os.Stderr, "hwatchvet: %v\n", err)
		return 1
	}
	fmt.Println(string(data))
	if len(merged) > 0 {
		return 1
	}
	return 0
}

// mergeJSONStream strips `#` comment lines and decodes the remaining
// concatenated JSON objects, merging them into one
// {package: {analyzer: result}} tree. Packages with no findings emit
// empty objects and are dropped.
func mergeJSONStream(raw string) (map[string]map[string]json.RawMessage, error) {
	var filtered strings.Builder
	for _, line := range strings.Split(raw, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		filtered.WriteString(line)
		filtered.WriteString("\n")
	}
	merged := make(map[string]map[string]json.RawMessage)
	dec := json.NewDecoder(strings.NewReader(filtered.String()))
	for dec.More() {
		var one map[string]map[string]json.RawMessage
		if err := dec.Decode(&one); err != nil {
			return nil, err
		}
		for pkg, byAnalyzer := range one {
			if len(byAnalyzer) == 0 {
				continue
			}
			m, ok := merged[pkg]
			if !ok {
				m = make(map[string]json.RawMessage)
				merged[pkg] = m
			}
			for name, res := range byAnalyzer {
				m[name] = res
			}
		}
	}
	return merged, nil
}

// isUnitcheckerInvocation reports whether the go command (or a user asking
// for help) is driving us via the vet tool protocol.
func isUnitcheckerInvocation(args []string) bool {
	if len(args) == 0 {
		return false
	}
	for _, a := range args {
		if strings.HasPrefix(a, "-V") || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return args[0] == "help"
}
