// Command hwatchvet runs the repo's static-analysis suite: the four
// custom contract analyzers (detrand, pktown, schedclosure,
// hwatchdirective — see DESIGN.md §6f) plus a curated set of vendored
// standard go/analysis passes.
//
// Usage:
//
//	go run ./cmd/hwatchvet ./...        # analyze packages (the common case)
//	go run ./cmd/hwatchvet help         # list analyzers
//	go run ./cmd/hwatchvet help detrand # analyzer detail + flags
//
// The binary speaks the go vet unitchecker protocol: when invoked by the
// go command with -V=full / -flags / a *.cfg argument it behaves as a
// vet tool. For package-pattern arguments it re-executes itself through
// `go vet -vettool=<self>` so the build system handles loading, export
// data and caching — this is how a multichecker works without network
// access to the full x/tools module.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"hwatch/internal/analysis/suite"
)

func main() {
	args := os.Args[1:]
	if isUnitcheckerInvocation(args) {
		unitchecker.Main(suite.All()...) // does not return
	}

	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hwatchvet: cannot locate own executable: %v\n", err)
		os.Exit(1)
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "hwatchvet: %v\n", err)
		os.Exit(1)
	}
}

// isUnitcheckerInvocation reports whether the go command (or a user asking
// for help) is driving us via the vet tool protocol.
func isUnitcheckerInvocation(args []string) bool {
	if len(args) == 0 {
		return false
	}
	for _, a := range args {
		if strings.HasPrefix(a, "-V") || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return args[0] == "help"
}
