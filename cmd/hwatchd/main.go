// Command hwatchd serves scenario jobs over HTTP/JSON: a multi-tenant
// front door to the simulator with bounded concurrency, queue
// backpressure (429 + Retry-After), streamed per-job progress, and a
// content-addressed result cache keyed by (canonical spec digest, code
// version).
//
// Usage:
//
//	hwatchd -addr :8080
//	curl -s -X POST -d @examples/server_submit.json 'localhost:8080/api/v1/jobs?wait=1'
//
// See README.md "Running as a service" for the full walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"hwatch"
	"hwatch/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hwatchd: ")
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		parallel = flag.Int("parallel", 0, "concurrent simulation runs (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 0, "admitted jobs beyond the running set before 429 (0 = 2*parallel)")
		cache    = flag.Int("cache", 64, "result-cache entries")
		shards   = flag.Int("shards", 0, "engine shards per run (0/1 = single loop; digests must not change)")
	)
	flag.Parse()
	hwatch.SetShards(*shards)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	srv := server.New(ctx, server.Config{
		Parallel:   *parallel,
		QueueDepth: *queue,
		CacheSize:  *cache,
	})
	defer srv.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		<-ctx.Done()
		log.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("version %s listening on %s (parallel=%d)", srv.Version(), *addr, srv.Stats().Parallel)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}
