// Command figgen regenerates the data behind every figure in the paper's
// evaluation in one run, writing comparison tables to stdout and CSV curve
// data under -out (default "out/").
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"hwatch"
	"hwatch/internal/server"
	"hwatch/internal/server/client"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figgen: ")
	var (
		outDir    = flag.String("out", "out", "directory for CSV curve data")
		scale     = flag.Float64("scale", 1.0, "scenario scale in (0,1]")
		only      = flag.String("only", "", "comma-separated subset, e.g. fig8,fig11")
		parallel  = flag.Int("parallel", 0, "concurrent scenario runs (0 = GOMAXPROCS)")
		check     = flag.Bool("check", false, "run the physical-invariant checker; exit 1 on violations")
		serverURL = flag.String("server", "", "run figures via a hwatchd instance (e.g. http://127.0.0.1:8080) instead of locally")
	)
	flag.Parse()
	hwatch.SetParallel(*parallel)
	hwatch.SetInvariantChecks(*check)

	want := map[string]bool{}
	if *only != "" {
		for _, f := range strings.Split(*only, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}
	selected := func(name string) bool { return len(want) == 0 || want[name] }

	if *serverURL != "" {
		if *check {
			log.Fatal("-check runs locally; it cannot be combined with -server")
		}
		viaServer(*serverURL, *outDir, *scale, selected)
		return
	}

	violations := 0
	save := func(prefix string, r *hwatch.Run) {
		for _, v := range r.InvariantViolations {
			violations++
			fmt.Printf("!! invariant violation [%s]: %s\n", r.Label, v)
		}
		if err := hwatch.SaveRun(*outDir, prefix, r); err != nil {
			log.Fatalf("saving %s: %v", prefix, err)
		}
	}
	section := func(name, caption string) {
		fmt.Printf("\n== %s — %s ==\n", name, caption)
	}
	plots := func(fig string, labels, prefixes []string) {
		if err := hwatch.WriteFigurePlots(*outDir, fig, labels, prefixes); err != nil {
			log.Fatalf("plot scripts for %s: %v", fig, err)
		}
	}

	start := time.Now()
	if selected("fig1") {
		section("Figure 1", "DCTCP vs initial congestion window")
		res := hwatch.Fig1(*scale)
		var runs []*hwatch.Run
		var labels, prefixes []string
		for _, icw := range res.ICWs {
			runs = append(runs, res.Runs[icw])
			prefix := fmt.Sprintf("fig1_icw%d", icw)
			save(prefix, res.Runs[icw])
			labels = append(labels, res.Runs[icw].Label)
			prefixes = append(prefixes, prefix)
		}
		fmt.Print(hwatch.Table(runs))
		plots("fig1", labels, prefixes)
	}
	if selected("fig2") {
		section("Figure 2", "DCTCP alone vs coexistence MIX")
		res := hwatch.Fig2(*scale)
		fmt.Print(hwatch.Table([]*hwatch.Run{res.DCTCP, res.Mix, res.MixHWatch}))
		fmt.Printf("FCT variance: DCTCP=%.1f ms^2, MIX=%.1f ms^2, MIX+HWatch=%.1f ms^2\n",
			res.DCTCP.ShortFCTms.Var(), res.Mix.ShortFCTms.Var(), res.MixHWatch.ShortFCTms.Var())
		save("fig2_dctcp", res.DCTCP)
		save("fig2_mix", res.Mix)
		save("fig2_mix_hwatch", res.MixHWatch)
		plots("fig2", []string{"DCTCP", "MIX", "MIX+HWatch"},
			[]string{"fig2_dctcp", "fig2_mix", "fig2_mix_hwatch"})
	}
	schemeFig := func(name, caption string, res *hwatch.Fig8Result) {
		section(name, caption)
		var runs []*hwatch.Run
		var labels, prefixes []string
		for _, s := range res.Order {
			runs = append(runs, res.Runs[s])
			prefix := strings.ToLower(name) + "_" + strings.ToLower(s.String())
			save(prefix, res.Runs[s])
			labels = append(labels, s.String())
			prefixes = append(prefixes, prefix)
		}
		fmt.Print(hwatch.Table(runs))
		plots(strings.ToLower(name), labels, prefixes)
	}
	if selected("fig8") {
		schemeFig("Fig8", "50 sources: DropTail / RED / HWatch / DCTCP", hwatch.Fig8(*scale))
	}
	if selected("fig9") {
		schemeFig("Fig9", "100 sources (scalability)", hwatch.Fig9(*scale))
	}
	if selected("fig11") {
		section("Figure 11", "testbed: TCP vs TCP-HWatch")
		res := hwatch.Fig11(*scale)
		fmt.Print(hwatch.Table([]*hwatch.Run{res.TCP, res.HWatch}))
		save("fig11_tcp", res.TCP)
		save("fig11_hwatch", res.HWatch)
		plots("fig11", []string{"TCP", "TCP-HWatch"}, []string{"fig11_tcp", "fig11_hwatch"})
	}
	fmt.Printf("\nall selected figures regenerated in %v; curves under %s/\n",
		time.Since(start).Round(time.Millisecond), *outDir)
	if violations > 0 {
		log.Fatalf("%d invariant violations", violations)
	}
}

// viaServer fetches each selected figure from a hwatchd instance. Results
// arrive in wire form; client.Runs re-verifies every run digest, so the
// CSVs written here are bit-equivalent to a local regeneration on the
// same code version.
func viaServer(base, outDir string, scale float64, selected func(string) bool) {
	cl := client.New(base, nil)
	ctx := context.Background()
	start := time.Now()
	for _, fig := range hwatch.FigNames() {
		if !selected(fig) {
			continue
		}
		res, err := cl.Submit(ctx, &server.JobRequest{Kind: "fig", Name: fig, Scale: scale})
		if err != nil {
			log.Fatalf("%s via %s: %v", fig, base, err)
		}
		runs, err := client.Runs(res)
		if err != nil {
			log.Fatalf("%s: %v", fig, err)
		}
		origin := "computed"
		if res.Cached {
			origin = "cache hit"
		}
		fmt.Printf("\n== %s — via %s (%s, version %s) ==\n", fig, base, origin, res.Version)
		fmt.Print(hwatch.Table(runs))
		var labels, prefixes []string
		for _, r := range runs {
			prefix := fig + "_" + sanitize(r.Label)
			if err := hwatch.SaveRun(outDir, prefix, r); err != nil {
				log.Fatalf("saving %s: %v", prefix, err)
			}
			labels = append(labels, r.Label)
			prefixes = append(prefixes, prefix)
		}
		if err := hwatch.WriteFigurePlots(outDir, fig, labels, prefixes); err != nil {
			log.Fatalf("plot scripts for %s: %v", fig, err)
		}
	}
	fmt.Printf("\nall selected figures fetched in %v; curves under %s/\n",
		time.Since(start).Round(time.Millisecond), outDir)
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '_'
		}
	}, s)
}
