// Command sweep runs the ablation studies over HWatch's design choices on
// the Fig. 8 scenario (see DESIGN.md §5).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"

	"hwatch"
	"hwatch/internal/server"
	"hwatch/internal/server/client"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	var (
		what      = flag.String("what", "all", "ablation: probes|k|icw|batch|pacing|guests|empirical|coflow|incast|all")
		scale     = flag.Float64("scale", 1.0, "scenario scale in (0,1]")
		parallel  = flag.Int("parallel", 0, "concurrent scenario runs (0 = GOMAXPROCS)")
		check     = flag.Bool("check", false, "run the physical-invariant checker on every cell")
		schemes   = flag.String("schemes", "", "comma-separated registered scheme names for the extension studies (default: the paper's four)")
		serverURL = flag.String("server", "", "run sweeps via a hwatchd instance (e.g. http://127.0.0.1:8080) instead of locally")
	)
	flag.Parse()
	hwatch.SetParallel(*parallel)
	hwatch.SetInvariantChecks(*check)

	if *serverURL != "" {
		if *check {
			log.Fatal("-check runs locally; it cannot be combined with -server")
		}
		viaServer(*serverURL, *what, *scale, *schemes)
		return
	}

	set := hwatch.AllSchemes()
	if *schemes != "" {
		set = nil
		for _, name := range strings.Split(*schemes, ",") {
			name = strings.ToLower(strings.TrimSpace(name))
			if _, ok := hwatch.LookupScheme(name); !ok {
				log.Fatalf("unknown scheme %q: registered schemes are %s",
					name, strings.Join(hwatch.SchemeNames(), ", "))
			}
			set = append(set, hwatch.Scheme(name))
		}
	}

	if *what == "empirical" || *what == "all" {
		fmt.Println("\n== empirical — web-search Poisson workload (extension) ==")
		p := hwatch.DefaultEmpirical()
		for _, r := range hwatch.RunEmpirical(set, p) {
			fmt.Println(r)
		}
		if *what == "empirical" {
			return
		}
	}
	if *what == "coflow" || *what == "all" {
		fmt.Println("\n== coflow — job completion times, 16-wide jobs (extension) ==")
		for _, r := range hwatch.RunCoflow(set, hwatch.DefaultCoflow()) {
			fmt.Println(r)
		}
		if *what == "coflow" {
			return
		}
	}
	if *what == "incast" || *what == "all" {
		fmt.Println("\n== incast — latency cliff vs synchronized senders (extension) ==")
		for _, r := range hwatch.RunIncastSweep(set, hwatch.DefaultIncastSweep()) {
			fmt.Println(r)
		}
		if *what == "incast" {
			return
		}
	}

	sweeps := []struct {
		name    string
		caption string
		run     func(float64) []hwatch.AblationPoint
	}{
		{"probes", "probe count per connection setup", hwatch.AblationProbes},
		{"k", "ECN marking threshold (fraction of buffer)", hwatch.AblationThreshold},
		{"icw", "initial-window policy (probe credit)", hwatch.AblationStartWindow},
		{"batch", "Rule 1 batch merge and growth cadence", hwatch.AblationBatches},
		{"pacing", "SYN-ACK token-bucket pacing", hwatch.AblationPacing},
		{"guests", "guest stack agnosticism (R3)", hwatch.AblationGuestStacks},
	}

	found := false
	for _, s := range sweeps {
		if *what != "all" && *what != s.name {
			continue
		}
		found = true
		fmt.Printf("\n== ablation %s — %s ==\n", s.name, s.caption)
		for _, pt := range s.run(*scale) {
			fmt.Println(pt)
		}
	}
	if !found {
		log.Fatalf("unknown ablation %q", *what)
	}
}

// viaServer runs the selected sweeps as hwatchd jobs and prints the rows
// the server computed (or had cached).
func viaServer(base, what string, scale float64, schemes string) {
	cl := client.New(base, nil)
	ctx := context.Background()
	var schemeList []string
	if schemes != "" {
		for _, name := range strings.Split(schemes, ",") {
			schemeList = append(schemeList, strings.ToLower(strings.TrimSpace(name)))
		}
	}
	type cell struct {
		req     server.JobRequest
		caption string
	}
	var cells []cell
	study := func(name, caption string) {
		cells = append(cells, cell{server.JobRequest{Kind: "study", Name: name, Schemes: schemeList}, caption})
	}
	ablation := func(name, caption string) {
		cells = append(cells, cell{server.JobRequest{Kind: "ablation", Name: name, Scale: scale}, caption})
	}
	all := what == "all"
	if all || what == "empirical" {
		study("empirical", "web-search Poisson workload (extension)")
	}
	if all || what == "coflow" {
		study("coflow", "job completion times, 16-wide jobs (extension)")
	}
	if all || what == "incast" {
		study("incast", "latency cliff vs synchronized senders (extension)")
	}
	for _, a := range [][2]string{
		{"probes", "probe count per connection setup"},
		{"k", "ECN marking threshold (fraction of buffer)"},
		{"icw", "initial-window policy (probe credit)"},
		{"batch", "Rule 1 batch merge and growth cadence"},
		{"pacing", "SYN-ACK token-bucket pacing"},
		{"guests", "guest stack agnosticism (R3)"},
	} {
		if all || what == a[0] {
			ablation(a[0], a[1])
		}
	}
	if len(cells) == 0 {
		log.Fatalf("unknown ablation %q", what)
	}
	for _, c := range cells {
		res, err := cl.Submit(ctx, &c.req)
		if err != nil {
			log.Fatalf("%s %s via %s: %v", c.req.Kind, c.req.Name, base, err)
		}
		origin := "computed"
		if res.Cached {
			origin = "cache hit"
		}
		fmt.Printf("\n== %s %s — %s (via %s, %s) ==\n", c.req.Kind, c.req.Name, c.caption, base, origin)
		for _, row := range res.Rows {
			fmt.Println(row)
		}
	}
}
