// Command sweep runs the ablation studies over HWatch's design choices on
// the Fig. 8 scenario (see DESIGN.md §5).
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"hwatch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	var (
		what     = flag.String("what", "all", "ablation: probes|k|icw|batch|pacing|guests|empirical|coflow|incast|all")
		scale    = flag.Float64("scale", 1.0, "scenario scale in (0,1]")
		parallel = flag.Int("parallel", 0, "concurrent scenario runs (0 = GOMAXPROCS)")
		check    = flag.Bool("check", false, "run the physical-invariant checker on every cell")
		schemes  = flag.String("schemes", "", "comma-separated registered scheme names for the extension studies (default: the paper's four)")
	)
	flag.Parse()
	hwatch.SetParallel(*parallel)
	hwatch.SetInvariantChecks(*check)

	set := hwatch.AllSchemes()
	if *schemes != "" {
		set = nil
		for _, name := range strings.Split(*schemes, ",") {
			name = strings.ToLower(strings.TrimSpace(name))
			if _, ok := hwatch.LookupScheme(name); !ok {
				log.Fatalf("unknown scheme %q: registered schemes are %s",
					name, strings.Join(hwatch.SchemeNames(), ", "))
			}
			set = append(set, hwatch.Scheme(name))
		}
	}

	if *what == "empirical" || *what == "all" {
		fmt.Println("\n== empirical — web-search Poisson workload (extension) ==")
		p := hwatch.DefaultEmpirical()
		for _, r := range hwatch.RunEmpirical(set, p) {
			fmt.Println(r)
		}
		if *what == "empirical" {
			return
		}
	}
	if *what == "coflow" || *what == "all" {
		fmt.Println("\n== coflow — job completion times, 16-wide jobs (extension) ==")
		for _, r := range hwatch.RunCoflow(set, hwatch.DefaultCoflow()) {
			fmt.Println(r)
		}
		if *what == "coflow" {
			return
		}
	}
	if *what == "incast" || *what == "all" {
		fmt.Println("\n== incast — latency cliff vs synchronized senders (extension) ==")
		for _, r := range hwatch.RunIncastSweep(set, hwatch.DefaultIncastSweep()) {
			fmt.Println(r)
		}
		if *what == "incast" {
			return
		}
	}

	sweeps := []struct {
		name    string
		caption string
		run     func(float64) []hwatch.AblationPoint
	}{
		{"probes", "probe count per connection setup", hwatch.AblationProbes},
		{"k", "ECN marking threshold (fraction of buffer)", hwatch.AblationThreshold},
		{"icw", "initial-window policy (probe credit)", hwatch.AblationStartWindow},
		{"batch", "Rule 1 batch merge and growth cadence", hwatch.AblationBatches},
		{"pacing", "SYN-ACK token-bucket pacing", hwatch.AblationPacing},
		{"guests", "guest stack agnosticism (R3)", hwatch.AblationGuestStacks},
	}

	found := false
	for _, s := range sweeps {
		if *what != "all" && *what != s.name {
			continue
		}
		found = true
		fmt.Printf("\n== ablation %s — %s ==\n", s.name, s.caption)
		for _, pt := range s.run(*scale) {
			fmt.Println(pt)
		}
	}
	if !found {
		log.Fatalf("unknown ablation %q", *what)
	}
}
