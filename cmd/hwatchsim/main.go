// Command hwatchsim runs one of the paper's experiments and prints the
// rows/series the corresponding figure plots.
//
// Usage:
//
//	hwatchsim -exp fig8                  # comparison table for Fig. 8
//	hwatchsim -exp fig9 -scale 0.5       # half-scale quick run
//	hwatchsim -exp fig1 -out out/        # also dump CSV series per run
//	hwatchsim -exp scheme -scheme hwatch -long 25 -short 25
//	hwatchsim -exp ladder -rung storm/websearch -scale 0.1
//	hwatchsim -list-schemes              # every registered scheme name
//	hwatchsim -list-rungs                # every registered ladder rung
//	hwatchsim -list-faults               # every fault kind for -faults files
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"hwatch"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hwatchsim: ")
	var (
		exp         = flag.String("exp", "fig8", "experiment: fig1|fig2|fig8|fig9|fig11|scheme|spec|ladder")
		spec        = flag.String("spec", "", "JSON scenario file (with -exp spec)")
		faultsFile  = flag.String("faults", "", "JSON fault-schedule file armed on the run (with -exp scheme or spec)")
		scale       = flag.Float64("scale", 1.0, "scenario scale in (0,1]; 1.0 = paper scale")
		outDir      = flag.String("out", "", "directory for per-run CSV series (optional)")
		scheme      = flag.String("scheme", "hwatch", "for -exp scheme: a registered scheme name (see -list-schemes)")
		rung        = flag.String("rung", "", "for -exp ladder: run one rung (see -list-rungs); empty = whole ladder")
		longN       = flag.Int("long", 25, "for -exp scheme: long-lived sources")
		shortN      = flag.Int("short", 25, "for -exp scheme: short-lived sources")
		seed        = flag.Int64("seed", 42, "scenario seed")
		asJSON      = flag.Bool("json", false, "emit run summaries as JSON")
		parallel    = flag.Int("parallel", 0, "concurrent scenario runs (0 = GOMAXPROCS)")
		shards      = flag.Int("shards", 0, "engine shards per run (0/1 = single loop; digests must not change)")
		check       = flag.Bool("check", false, "run the physical-invariant checker; exit 1 on violations")
		digest      = flag.Bool("digest", false, "print only '<digest> <label>' per run (for CI diffing)")
		specDigest  = flag.Bool("spec-digest", false, "print the canonical content digest of -spec and exit (no simulation)")
		listSchemes = flag.Bool("list-schemes", false, "list every registered scheme and exit")
		listRungs   = flag.Bool("list-rungs", false, "list every registered ladder rung and exit")
		listFaults  = flag.Bool("list-faults", false, "list every fault kind for -faults files and exit")
		noPool      = flag.Bool("nopool", false, "disable packet pooling (escape hatch; digests must not change)")
		noWheel     = flag.Bool("nowheel", false, "schedule on the plain binary heap instead of the timer wheel")
	)
	flag.Parse()
	hwatch.SetParallel(*parallel)
	hwatch.SetShards(*shards)
	hwatch.SetInvariantChecks(*check)
	if *noPool {
		netem.SetPacketPooling(false)
	}
	if *noWheel {
		sim.SetDefaultOptions(sim.Options{NoWheel: true, NoSlab: true})
	}

	if *listSchemes {
		for _, def := range hwatch.Schemes() {
			fmt.Printf("%-12s %-16s %s\n", def.Name, def.Label, def.Description)
		}
		return
	}
	if *listRungs {
		for _, r := range hwatch.Rungs() {
			fmt.Printf("%-18s %s\n", r.Name, r.Description)
		}
		return
	}
	if *listFaults {
		for _, ki := range hwatch.FaultKinds() {
			shape := "point"
			if ki.Windowed {
				shape = "window"
			}
			fmt.Printf("%-15s %-6s %s\n", ki.Kind, shape, ki.Doc)
		}
		return
	}

	if *specDigest {
		if *spec == "" {
			log.Fatal("-spec-digest requires -spec file.json")
		}
		sp, err := hwatch.LoadSpec(*spec)
		if err != nil {
			log.Fatal(err)
		}
		d, err := sp.CanonicalDigest()
		if err != nil {
			log.Fatal(err)
		}
		// The canonical digest is the job id and cache address hwatchd
		// assigns this spec, so CLI and server path can be cross-checked.
		fmt.Println(d)
		return
	}

	var sched hwatch.FaultSchedule
	if *faultsFile != "" {
		if *exp != "scheme" && *exp != "spec" {
			log.Fatalf("-faults applies to -exp scheme or -exp spec, not %q", *exp)
		}
		var err error
		if sched, err = hwatch.LoadFaults(*faultsFile); err != nil {
			log.Fatal(err)
		}
	}

	var runs []*hwatch.Run
	switch *exp {
	case "fig1":
		res := hwatch.Fig1(*scale)
		for _, icw := range res.ICWs {
			runs = append(runs, res.Runs[icw])
		}
	case "fig2":
		res := hwatch.Fig2(*scale)
		runs = []*hwatch.Run{res.DCTCP, res.Mix}
	case "fig8":
		res := hwatch.Fig8(*scale)
		for _, s := range res.Order {
			runs = append(runs, res.Runs[s])
		}
	case "fig9":
		res := hwatch.Fig9(*scale)
		for _, s := range res.Order {
			runs = append(runs, res.Runs[s])
		}
	case "fig11":
		res := hwatch.Fig11(*scale)
		runs = []*hwatch.Run{res.TCP, res.HWatch}
	case "scheme":
		name := strings.ToLower(*scheme)
		if _, ok := hwatch.LookupScheme(name); !ok {
			log.Fatalf("unknown scheme %q: registered schemes are %s",
				*scheme, strings.Join(hwatch.SchemeNames(), ", "))
		}
		p := hwatch.PaperDumbbell(*longN, *shortN)
		p.Seed = *seed
		p.ByteBuffers = true
		if len(sched) > 0 {
			// Leave room for RTO-backed recovery after the last fault.
			p.DrainAfter = 1_000_000_000 // 1 s, in engine ns
		}
		sc := &hwatch.Scenario{
			Kind:     hwatch.KindDumbbell,
			Schemes:  []hwatch.SchemeShare{{Scheme: hwatch.Scheme(name)}},
			Dumbbell: p,
			Faults:   sched,
		}
		run, err := sc.Run()
		if err != nil {
			log.Fatal(err)
		}
		runs = []*hwatch.Run{run}
	case "ladder":
		names := []string{}
		if *rung != "" {
			if _, ok := hwatch.LookupRung(*rung); !ok {
				log.Fatalf("unknown rung %q: registered rungs are %s",
					*rung, strings.Join(hwatch.RungNames(), ", "))
			}
			names = append(names, *rung)
		} else {
			for _, r := range hwatch.Rungs() {
				names = append(names, r.Name)
			}
		}
		for _, name := range names {
			run, err := hwatch.RunRung(name, *scale)
			if err != nil {
				log.Fatal(err)
			}
			runs = append(runs, run)
		}
	case "spec":
		if *spec == "" {
			log.Fatal("-exp spec requires -spec file.json")
		}
		sp, err := hwatch.LoadSpec(*spec)
		if err != nil {
			log.Fatal(err)
		}
		sc := sp.Scenario()
		if len(sched) > 0 {
			// -faults overrides the file's own schedule.
			sc.Faults = sched
		}
		run, err := sc.Run()
		if err != nil {
			log.Fatal(err)
		}
		runs = []*hwatch.Run{run}
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}

	if *check {
		bad := false
		for _, r := range runs {
			for _, v := range r.InvariantViolations {
				bad = true
				fmt.Fprintf(os.Stderr, "invariant violation [%s]: %s\n", r.Label, v)
			}
		}
		if bad {
			os.Exit(1)
		}
	}

	switch {
	case *digest:
		// Digest lines carry no timing, so two invocations of the same spec
		// and seed diff clean at any -parallel value.
		for _, r := range runs {
			fmt.Printf("%s %s\n", r.DigestHex(), r.Label)
		}
		return
	case *asJSON:
		out, err := hwatch.JSON(runs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	default:
		fmt.Printf("experiment %s (scale %.2f)\n\n", *exp, *scale)
		fmt.Print(hwatch.Table(runs))
	}

	if *outDir != "" {
		for _, r := range runs {
			prefix := *exp + "_" + sanitize(r.Label)
			if err := hwatch.SaveRun(*outDir, prefix, r); err != nil {
				log.Fatalf("saving %s: %v", prefix, err)
			}
		}
		fmt.Fprintf(os.Stderr, "CSV series written to %s\n", *outDir)
	}
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, s)
}
