// Command hwtrace runs a scenario with packet tracing and emits the trace
// — as human-readable text or as a compact HWT1 binary stream — for
// offline analysis of HWatch's datapath behaviour (probe trains, SYN
// holding, rwnd rewrites).
//
//	hwtrace -spec run.json -o trace.hwt          # binary
//	hwtrace -spec run.json -text | head -100     # text to stdout
//	hwtrace -decode trace.hwt                    # print a binary trace
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hwatch/internal/aqm"
	"hwatch/internal/core"
	"hwatch/internal/netem"
	"hwatch/internal/sim"
	"hwatch/internal/tcp"
	"hwatch/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hwtrace: ")
	var (
		out    = flag.String("o", "", "binary trace output file (HWT1)")
		text   = flag.Bool("text", false, "print a text trace to stdout")
		decode = flag.String("decode", "", "decode and print an HWT1 file, then exit")
		flows  = flag.Int("flows", 3, "demo flows to trace")
		size   = flag.Int64("kb", 20, "flow size, KB")
	)
	flag.Parse()

	if *decode != "" {
		decodeFile(*decode)
		return
	}

	// A small HWatch demo fabric: flows from a to b through a marking
	// bottleneck, shims on both ends.
	n := netem.NewNetwork()
	a := n.NewHost("a")
	b := n.NewHost("b")
	sw := n.NewSwitch("sw")
	big := func() netem.Queue { return aqm.NewDropTailBytes(100000 * 1500) }
	n.LinkHostSwitch(a, sw, big(), big(), 10e9, 25*sim.Microsecond)
	down := netem.NewPort(n.Eng, aqm.NewMarkThresholdBytes(250*1500, 50*1500), 1e9, 25*sim.Microsecond)
	down.Connect(b)
	sw.Route(b.ID, sw.AddPort(down))
	up := netem.NewPort(n.Eng, big(), 10e9, 25*sim.Microsecond)
	up.Connect(sw)
	b.AttachUplink(up)

	// Taps must be installed BEFORE the shims: the receiver-side shim
	// consumes probe packets (VerdictStolen), so later filters never see
	// them.
	var bw *trace.BinaryWriter
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		bw, err = trace.NewBinaryWriter(f)
		if err != nil {
			log.Fatal(err)
		}
		trace.BinaryTap(a, bw)
		trace.BinaryTap(b, bw)
	}
	var tr *trace.Tracer
	if *text || *out == "" {
		tr = trace.NewTracer(os.Stdout, 0)
		tr.Tap(a)
		tr.Tap(b)
	}

	shimCfg := core.DefaultConfig(100 * sim.Microsecond)
	core.Attach(a, shimCfg)
	core.Attach(b, shimCfg)

	tcfg := tcp.DefaultConfig()
	b.Listen(80, tcp.NewListener(b, tcfg, nil))
	done := 0
	for i := 0; i < *flows; i++ {
		s := tcp.NewSender(a, b.ID, 80, *size*1000, tcfg)
		s.OnComplete = func(int64) { done++ }
		s.Start()
	}
	n.Eng.RunUntil(5 * sim.Second)

	if bw != nil {
		if err := bw.Flush(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "hwtrace: %d flows done, %d records -> %s\n", done, bw.Count(), *out)
	}
}

func decodeFile(path string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	br, err := trace.NewBinaryReader(f)
	if err != nil {
		log.Fatal(err)
	}
	recs, err := br.ReadAll()
	if err != nil {
		log.Fatalf("decoding: %v (after %d records)", err, len(recs))
	}
	for _, r := range recs {
		probe := ""
		if r.Probe {
			probe = " PROBE"
		}
		fmt.Printf("%10.3fus %-8s %s %d:%d>%d:%d %s seq=%d ack=%d len=%d ecn=%s rwnd=%d%s\n",
			float64(r.T)/1000, r.Host, r.Dir, r.Src, r.SrcPort, r.Dst, r.DstPort,
			r.Flags, r.Seq, r.Ack, r.Payload, r.ECN, r.Rwnd, probe)
	}
}
