// Command benchdiff is the repo's benchmark-regression harness: it runs the
// figure and micro benchmarks, records the results as BENCH_<date>.json, and
// compares runs against a committed baseline with benchstat-style
// thresholds.
//
// Modes (combine freely):
//
//	benchdiff -out BENCH_2026-08-05.json            # run, record
//	benchdiff -suite ladder -out BENCH_LADDER_2026-08-05.json
//	benchdiff -compare -baseline A.json -new B.json # diff two records
//	benchdiff -check -baseline A.json               # run, then diff vs A
//
// Suites: "main" is the figure + micro benchmarks; "ladder" is the scale
// ladder (1x/10x/100x dumbbells and the 10k-flow incast storms), recorded
// as BENCH_LADDER_<date>.json so the two baselines evolve independently.
// Explicit -bench / -packages override the suite's presets.
//
// Regression policy: allocs/op may not grow beyond -alloc-threshold
// (default 0.1% — sync.Pool refills under GC make figure-scale counts
// jitter by a few allocs, while any real regression is orders of magnitude
// larger; zero-alloc benchmarks stay exact because 0×anything is 0).
// ns/op is compared on the fastest of -count runs (the standard
// noise-robust statistic) and may regress up to -ns-threshold (default
// 10%). Because CI measures with -benchtime=1x, sub-millisecond benchmarks
// carry too much timer noise for wall-clock comparison, so ns/op is only
// enforced where the baseline op cost is at least -ns-floor (default 1ms);
// allocs/op is enforced everywhere.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is the aggregate of -count runs of one benchmark.
type Result struct {
	Runs     int                `json:"runs"`
	NsPerOp  float64            `json:"ns_per_op"`         // mean
	MinNsOp  float64            `json:"min_ns_op"`         // fastest run (noise-robust)
	BytesOp  float64            `json:"bytes_op"`          // mean B/op
	AllocsOp int64              `json:"allocs_op"`         // max allocs/op across runs
	Metrics  map[string]float64 `json:"metrics,omitempty"` // custom ReportMetric units, mean
}

// Record is one benchmark session, the unit committed as BENCH_<date>.json.
type Record struct {
	Date       string            `json:"date"`
	GoVersion  string            `json:"go"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	NumCPU     int               `json:"num_cpu"`
	Bench      string            `json:"bench"`
	Benchtime  string            `json:"benchtime"`
	Count      int               `json:"count"`
	Packages   []string          `json:"packages"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	var (
		out       = flag.String("out", "", "write results to this JSON file (default BENCH_<date>.json when running)")
		suite     = flag.String("suite", "main", "benchmark suite preset: main|ladder")
		benchRe   = flag.String("bench", "", "go test -bench regex (default from -suite)")
		benchtime = flag.String("benchtime", "1x", "go test -benchtime")
		count     = flag.Int("count", 5, "go test -count")
		pkgList   = flag.String("packages", "", "space-separated packages to benchmark (default from -suite)")
		compare   = flag.Bool("compare", false, "compare -baseline against -new instead of running")
		check     = flag.Bool("check", false, "run the benchmarks, then compare against -baseline")
		baseline  = flag.String("baseline", "", "baseline JSON for -compare / -check")
		newFile   = flag.String("new", "", "candidate JSON for -compare")
		nsThresh  = flag.Float64("ns-threshold", 0.10, "allowed fractional ns/op regression")
		nsFloor   = flag.Float64("ns-floor", 1e6, "ns/op compared only when baseline >= this (ns)")
		alThresh  = flag.Float64("alloc-threshold", 0.001, "allowed fractional allocs/op growth (absorbs pool/GC jitter)")
		subset    = flag.Bool("subset", false, "allow the new run to cover only part of the baseline (partial-suite checks, e.g. the affordable ladder rungs in CI)")
	)
	flag.Parse()

	if *compare {
		old := load(*baseline)
		cur := load(*newFile)
		os.Exit(diff(old, cur, *nsThresh, *nsFloor, *alThresh, *subset))
	}

	prefix := "BENCH_"
	switch *suite {
	case "main":
		if *benchRe == "" {
			*benchRe = mainBench
		}
		if *pkgList == "" {
			*pkgList = mainPkgs
		}
	case "ladder":
		prefix = "BENCH_LADDER_"
		if *benchRe == "" {
			*benchRe = ladderBench
		}
		if *pkgList == "" {
			*pkgList = ladderPkgs
		}
	default:
		fatal(fmt.Errorf("unknown -suite %q (want main or ladder)", *suite))
	}

	rec := run(*benchRe, *benchtime, *count, strings.Fields(*pkgList))
	path := *out
	if path == "" {
		path = prefix + rec.Date + ".json"
	}
	save(path, rec)
	fmt.Printf("recorded %d benchmarks -> %s\n", len(rec.Benchmarks), path)

	if *check {
		old := load(*baseline)
		os.Exit(diff(old, rec, *nsThresh, *nsFloor, *alThresh, *subset))
	}
}

const (
	mainBench = "BenchmarkFig8$|BenchmarkScheme|BenchmarkEngineSchedule$|BenchmarkEngineScheduleCancel$|BenchmarkEngineHeapOracle$|BenchmarkPortForward$|BenchmarkPortThroughput$|BenchmarkHostFilterChain$|BenchmarkShimTransfer$|BenchmarkShimRewrite$|BenchmarkChecksum|BenchmarkGCSweep$|BenchmarkFlowTableChurn$"
	mainPkgs  = ". ./internal/sim ./internal/netem ./internal/core"

	ladderBench = "BenchmarkLadder|BenchmarkStorm"
	ladderPkgs  = "."
)

func run(benchRe, benchtime string, count int, pkgs []string) Record {
	args := []string{"test", "-run", "^$", "-bench", benchRe, "-benchmem",
		"-benchtime", benchtime, "-count", strconv.Itoa(count), "-timeout", "60m"}
	args = append(args, pkgs...)
	fmt.Fprintf(os.Stderr, "benchdiff: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		fatal(err)
	}
	if err := cmd.Start(); err != nil {
		fatal(err)
	}

	type agg struct {
		ns, bytes []float64
		allocs    []int64
		metrics   map[string][]float64
	}
	aggs := map[string]*agg{}
	pkg := ""
	sc := bufio.NewScanner(outPipe)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if strings.HasPrefix(line, "pkg: ") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		}
		name, vals, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		key := pkg + "." + name
		a := aggs[key]
		if a == nil {
			a = &agg{metrics: map[string][]float64{}}
			aggs[key] = a
		}
		for unit, v := range vals {
			switch unit {
			case "ns/op":
				a.ns = append(a.ns, v)
			case "B/op":
				a.bytes = append(a.bytes, v)
			case "allocs/op":
				a.allocs = append(a.allocs, int64(v))
			default:
				a.metrics[unit] = append(a.metrics[unit], v)
			}
		}
	}
	if err := cmd.Wait(); err != nil {
		fatal(fmt.Errorf("go test -bench failed: %w", err))
	}

	rec := Record{
		Date: time.Now().Format("2006-01-02"), GoVersion: runtime.Version(),
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU(),
		Bench: benchRe, Benchtime: benchtime, Count: count, Packages: pkgs,
		Benchmarks: map[string]Result{},
	}
	for key, a := range aggs {
		r := Result{Runs: len(a.ns), NsPerOp: mean(a.ns), MinNsOp: min64(a.ns), BytesOp: mean(a.bytes)}
		for _, n := range a.allocs {
			if n > r.AllocsOp {
				r.AllocsOp = n
			}
		}
		if len(a.metrics) > 0 {
			r.Metrics = map[string]float64{}
			for unit, vs := range a.metrics {
				r.Metrics[unit] = mean(vs)
			}
		}
		rec.Benchmarks[key] = r
	}
	return rec
}

// parseBenchLine handles "BenchmarkName-8  3  123 ns/op  4 B/op  5 allocs/op
// 6.7 custom-unit" lines.
func parseBenchLine(line string) (string, map[string]float64, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", nil, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip -GOMAXPROCS
		}
	}
	if _, err := strconv.ParseInt(f[1], 10, 64); err != nil {
		return "", nil, false // iteration count expected
	}
	vals := map[string]float64{}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", nil, false
		}
		vals[f[i+1]] = v
	}
	return name, vals, len(vals) > 0
}

func diff(old, cur Record, nsThresh, nsFloor, alThresh float64, subset bool) int {
	keys := make([]string, 0, len(old.Benchmarks))
	for k := range old.Benchmarks {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	regressions := 0
	fmt.Printf("%-60s %14s %14s %8s\n", "benchmark (vs "+old.Date+")", "ns/op", "allocs/op", "verdict")
	for _, k := range keys {
		o := old.Benchmarks[k]
		c, ok := cur.Benchmarks[k]
		if !ok {
			if subset {
				continue
			}
			fmt.Printf("%-60s %38s\n", k, "MISSING from new run")
			regressions++
			continue
		}
		// Fastest-of-count is far less noisy than the mean; old records
		// without min_ns_op fall back to the mean.
		oNs, cNs := o.MinNsOp, c.MinNsOp
		if oNs == 0 || cNs == 0 {
			oNs, cNs = o.NsPerOp, c.NsPerOp
		}
		verdict := "ok"
		nsDelta := pct(oNs, cNs)
		if oNs >= nsFloor && cNs > oNs*(1+nsThresh) {
			verdict = "NS-REGRESS"
			regressions++
		}
		if float64(c.AllocsOp) > float64(o.AllocsOp)*(1+alThresh) {
			verdict = "ALLOC-REGRESS"
			regressions++
		}
		fmt.Printf("%-60s %13.0f%s %8d->%-5d %8s\n", k, cNs, nsDelta, o.AllocsOp, c.AllocsOp, verdict)
	}
	for k := range cur.Benchmarks {
		if _, ok := old.Benchmarks[k]; !ok {
			fmt.Printf("%-60s %38s\n", k, "new (no baseline)")
		}
	}
	if regressions > 0 {
		fmt.Printf("benchdiff: %d regression(s) vs %s\n", regressions, old.Date)
		return 1
	}
	fmt.Println("benchdiff: no regressions")
	return 0
}

func pct(old, cur float64) string {
	if old <= 0 {
		return " (new)"
	}
	return fmt.Sprintf(" (%+.1f%%)", 100*(cur-old)/old)
}

func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

func min64(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func load(path string) Record {
	if path == "" {
		fatal(fmt.Errorf("missing -baseline/-new file"))
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var r Record
	if err := json.Unmarshal(raw, &r); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return r
}

func save(path string, r Record) {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
