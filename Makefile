GO ?= go
DATE := $(shell date +%F)
# Newest committed BENCH_*.json is the regression baseline (seed records
# document history and are not enforced).
BASELINE ?= $(lastword $(sort $(filter-out %_seed.json,$(wildcard BENCH_*.json))))

.PHONY: all build test race lint vet bench bench-baseline bench-check fuzz-smoke poison

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Static-analysis gate: formatting, the stock vet suite, and the repo's
# own hwatchvet analyzers (detrand, pktown, schedclosure, directive plus
# the curated vendored passes). CI's static-analysis job runs exactly this.
lint:
	@test -z "$$(gofmt -l . | grep -v '^vendor/')" || { gofmt -l . | grep -v '^vendor/'; echo "gofmt: files need formatting"; exit 1; }
	$(GO) vet ./...
	$(GO) run ./cmd/hwatchvet ./...

vet:
	$(GO) run ./cmd/hwatchvet ./...

race:
	$(GO) test -race ./...

# Quick interactive benchmark pass (no JSON, sane benchtime for micros).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngine|BenchmarkPort|BenchmarkShim|BenchmarkChecksum' \
		-benchmem ./internal/sim ./internal/netem ./internal/core

# Record a new baseline as BENCH_$(DATE).json (commit it alongside the
# change that moved the numbers).
bench-baseline:
	$(GO) run ./cmd/benchdiff -out BENCH_$(DATE).json

# Re-run the suite and fail on >10% ns/op or >0.1% allocs/op regression
# against the newest committed baseline. This is what CI's bench-regress
# job runs.
bench-check:
	@test -n "$(BASELINE)" || { echo "no BENCH_*.json baseline found"; exit 1; }
	$(GO) run ./cmd/benchdiff -check -baseline $(BASELINE) -out /tmp/bench_check.json

# Short fuzz smoke over every fuzz target with a committed corpus.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzBinaryRoundTrip -fuzztime 10s ./internal/trace
	$(GO) test -run '^$$' -fuzz FuzzChecksumPatchChain -fuzztime 10s ./internal/netem
	$(GO) test -run '^$$' -fuzz FuzzPacketPoolZeroed -fuzztime 10s ./internal/netem

# Pool-poisoning build: released packets are scribbled with sentinels, so
# any use-after-release flips a digest or an assertion.
poison:
	$(GO) test -tags poolpoison ./internal/netem ./internal/tcp ./internal/core ./internal/experiments
