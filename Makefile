GO ?= go
DATE := $(shell date +%F)
# Newest committed BENCH_*.json is the regression baseline (seed records
# document history and are not enforced; BENCH_LADDER_*.json belongs to the
# ladder suite below).
BASELINE ?= $(lastword $(sort $(filter-out %_seed.json BENCH_LADDER_%,$(wildcard BENCH_*.json))))
# Newest committed scale-ladder record, the bench-ladder baseline.
LADDER_BASELINE ?= $(lastword $(sort $(wildcard BENCH_LADDER_*.json)))

.PHONY: all build test race lint lint-json vet bench bench-baseline bench-check \
	bench-ladder bench-ladder-check fuzz-smoke poison chaos server-e2e

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Static-analysis gate: formatting, the stock vet suite, and the repo's
# own hwatchvet analyzers (detrand, pktown, schedclosure, lockscope,
# hookpure, ctxflow, directive plus the curated vendored passes, including
# the SSA-backed nilness and unusedwrite). A stale //hwatchvet:allow is a
# diagnostic, so a clean run also proves zero stale allows. CI's
# static-analysis job runs exactly this.
lint:
	@test -z "$$(gofmt -l . | grep -v '^vendor/')" || { gofmt -l . | grep -v '^vendor/'; echo "gofmt: files need formatting"; exit 1; }
	$(GO) vet ./...
	$(GO) run ./cmd/hwatchvet ./...

# Same suite, one merged JSON document on stdout (exit 1 on any finding)
# for editor integrations and CI annotations.
lint-json:
	$(GO) run ./cmd/hwatchvet -json ./...

vet:
	$(GO) run ./cmd/hwatchvet ./...

race:
	$(GO) test -race ./...

# Quick interactive benchmark pass (no JSON, sane benchtime for micros).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngine|BenchmarkPort|BenchmarkShim|BenchmarkChecksum' \
		-benchmem ./internal/sim ./internal/netem ./internal/core

# Record a new baseline as BENCH_$(DATE).json (commit it alongside the
# change that moved the numbers).
bench-baseline:
	$(GO) run ./cmd/benchdiff -out BENCH_$(DATE).json

# Re-run the suite and fail on >10% ns/op or >0.1% allocs/op regression
# against the newest committed baseline. This is what CI's bench-regress
# job runs.
bench-check:
	@test -n "$(BASELINE)" || { echo "no BENCH_*.json baseline found"; exit 1; }
	$(GO) run ./cmd/benchdiff -check -baseline $(BASELINE) -out /tmp/bench_check.json

# Run the full scale ladder (1x/10x/100x dumbbells plus both 10k-flow
# incast storms) and record the trajectory as BENCH_LADDER_$(DATE).json.
# Commit the record alongside any change that moves the numbers.
bench-ladder:
	$(GO) run ./cmd/benchdiff -suite ladder -out BENCH_LADDER_$(DATE).json

# Re-run the affordable rungs (1x and 10x, plus the sharded 10x so the
# shard dimension is tracked on every push; CI wall-clock budget) and fail
# on regression against the newest committed ladder record. CI's
# bench-ladder job runs exactly this. The alloc threshold is looser than
# the main suite's: pool-refill jitter scales with the rungs' live flow
# sets (~0.3% observed), while a real per-packet or per-flow regression
# is orders of magnitude above 1%.
bench-ladder-check:
	@test -n "$(LADDER_BASELINE)" || { echo "no BENCH_LADDER_*.json baseline found"; exit 1; }
	$(GO) run ./cmd/benchdiff -suite ladder -bench 'BenchmarkLadder1x$$|BenchmarkLadder10x$$|BenchmarkLadder10xShards4$$' \
		-check -subset -alloc-threshold 0.01 -baseline $(LADDER_BASELINE) \
		-out /tmp/bench_ladder_check.json

# Short fuzz smoke over every fuzz target with a committed corpus.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzBinaryRoundTrip -fuzztime 10s ./internal/trace
	$(GO) test -run '^$$' -fuzz FuzzChecksumPatchChain -fuzztime 10s ./internal/netem
	$(GO) test -run '^$$' -fuzz FuzzPacketPoolZeroed -fuzztime 10s ./internal/netem
	$(GO) test -run '^$$' -fuzz FuzzFlowSlab -fuzztime 10s ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzReorderBuffer -fuzztime 10s ./internal/netem
	$(GO) test -run '^$$' -fuzz FuzzSpecCanonicalDigest -fuzztime 10s ./internal/scenario

# Chaos gate: the fault-injection goldens, the recurring-chaos shard
# parity suite, and both example schedules under the recovery observer.
chaos: build
	$(GO) test -run 'TestGoldenDigests|TestRecurringChaosShardParity|TestChaosRunRecoversAndRepeats' \
		-count=1 ./internal/experiments ./internal/scenario
	$(GO) run ./cmd/hwatchsim -exp scheme -scheme hwatch \
		-faults examples/chaos_recurring_flap.json -check -digest
	$(GO) run ./cmd/hwatchsim -exp scheme -scheme hwatch \
		-faults examples/chaos_reorder_jitter.json -check -digest

# hwatchd gate: the end-to-end server suite (golden parity, cache hits,
# single-flight dedup, backpressure, cancellation) under the race
# detector. CI's hwatchd-e2e job runs this plus a live daemon-vs-CLI
# digest cross-check.
server-e2e:
	$(GO) test -race ./internal/server/...

# Pool-poisoning build: released packets are scribbled with sentinels, so
# any use-after-release flips a digest or an assertion.
poison:
	$(GO) test -tags poolpoison ./internal/netem ./internal/tcp ./internal/core ./internal/experiments
