// Package buildssa defines an Analyzer that constructs the SSA
// representation of an error-free package and returns the set of all
// functions within it.
//
// This vendored copy drives the repo's offline go/ssa subset (see that
// package's documentation): function bodies are lowered over the
// control-flow graphs produced by the ctrlflow pass, in naive
// (unlifted) form. Functions whose bodies fall outside the subset are
// still present in SrcFuncs but carry nil Blocks and a BuildError;
// analyses must skip them.
package buildssa

import (
	"go/ast"
	"reflect"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"
	"golang.org/x/tools/go/ssa"
)

var Analyzer = &analysis.Analyzer{
	Name:       "buildssa",
	Doc:        "build SSA-form IR for later passes",
	URL:        "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/buildssa",
	Run:        run,
	ResultType: reflect.TypeOf(new(SSA)),
	Requires:   []*analysis.Analyzer{ctrlflow.Analyzer},
}

// SSA provides SSA-form intermediate representation for all the
// source functions in the current package.
type SSA struct {
	Pkg      *ssa.Package
	SrcFuncs []*ssa.Function
}

func run(pass *analysis.Pass) (interface{}, error) {
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	// ctrlflow panics on a FuncLit it has not indexed (none should
	// exist, but a missing entry must not take the whole run down).
	litCFG := func(lit *ast.FuncLit) (g *cfg.CFG) {
		defer func() {
			if recover() != nil {
				g = nil
			}
		}()
		return cfgs.FuncLit(lit)
	}

	prog := &SSA{Pkg: &ssa.Package{Pkg: pass.Pkg}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := ssa.BuildFunction(pass.Pkg, pass.TypesInfo, fd, cfgs.FuncDecl(fd), litCFG)
			prog.Pkg.Funcs = append(prog.Pkg.Funcs, fn)
		}
	}

	// SrcFuncs lists every function including anonymous ones, parents
	// before their children, matching the upstream contract.
	var addAll func(fn *ssa.Function)
	addAll = func(fn *ssa.Function) {
		prog.SrcFuncs = append(prog.SrcFuncs, fn)
		for _, anon := range fn.AnonFuncs {
			addAll(anon)
		}
	}
	for _, fn := range prog.Pkg.Funcs {
		addAll(fn)
	}
	return prog, nil
}
