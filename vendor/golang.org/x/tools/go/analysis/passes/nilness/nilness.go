// Package nilness inspects the control-flow graph of an SSA function
// and reports errors such as nil pointer dereferences.
//
// This vendored copy targets the repo's naive-form SSA subset: local
// pointer-like variables live in Alloc cells, so nilness is a forward
// dataflow over cell contents with branch refinement on `x == nil` /
// `x != nil` conditions. Only *definite* nil dereferences are
// reported; a variable whose cell address escapes (passed to a call,
// captured by a closure, aliased) becomes untrackable and is never
// reported. This keeps the pass sound but deliberately modest.
package nilness

import (
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/buildssa"
	"golang.org/x/tools/go/ssa"
)

const Doc = `check for redundant or impossible nil comparisons and nil dereferences`

var Analyzer = &analysis.Analyzer{
	Name:     "nilness",
	Doc:      Doc,
	URL:      "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/nilness",
	Run:      run,
	Requires: []*analysis.Analyzer{buildssa.Analyzer},
}

func run(pass *analysis.Pass) (interface{}, error) {
	prog := pass.ResultOf[buildssa.Analyzer].(*buildssa.SSA)
	for _, fn := range prog.SrcFuncs {
		if fn.Blocks == nil {
			continue
		}
		runFunc(pass, fn)
	}
	return nil, nil
}

// nilFact is the abstract nil-ness of one tracked variable.
type nilFact int8

const (
	unknown nilFact = iota
	isNil
	isNonnil
)

func merge(a, b nilFact) nilFact {
	if a == b {
		return a
	}
	return unknown
}

// facts maps tracked variables to their nil-ness at a program point.
type facts map[*types.Var]nilFact

func (f facts) clone() facts {
	g := make(facts, len(f))
	for k, v := range f {
		g[k] = v
	}
	return g
}

func (f facts) equal(g facts) bool {
	if len(f) != len(g) {
		return false
	}
	for k, v := range f {
		if g[k] != v {
			return false
		}
	}
	return true
}

func runFunc(pass *analysis.Pass, fn *ssa.Function) {
	tracked := trackableVars(fn)
	if len(tracked) == 0 {
		return
	}

	// Forward fixpoint: entry facts per block.
	in := make([]facts, len(fn.Blocks))
	in[0] = facts{}
	work := []*ssa.BasicBlock{fn.Blocks[0]}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		state := in[b.Index].clone()
		state = flowBlock(b, state, tracked, nil)
		for i, succ := range b.Succs {
			out := state.clone()
			refineBranch(b, i, out, tracked)
			if in[succ.Index] == nil {
				in[succ.Index] = out
				work = append(work, succ)
			} else {
				joined := join(in[succ.Index], out)
				if !joined.equal(in[succ.Index]) {
					in[succ.Index] = joined
					work = append(work, succ)
				}
			}
		}
	}

	// Report pass: replay each reachable block with its final entry
	// facts and flag definite-nil dereferences.
	for _, b := range fn.Blocks {
		if in[b.Index] == nil {
			continue // unreachable
		}
		flowBlock(b, in[b.Index].clone(), tracked, func(pos token.Pos, what string) {
			if pos.IsValid() {
				pass.Reportf(pos, "nil dereference in %s", what)
			}
		})
	}
}

func join(a, b facts) facts {
	out := make(facts, len(a))
	for k, v := range a {
		out[k] = merge(v, b[k])
	}
	for k, v := range b {
		if _, ok := a[k]; !ok {
			out[k] = merge(v, unknown)
		}
	}
	return out
}

// trackableVars returns locals whose Alloc cell never escapes: every
// use of the cell is a direct Load or the address slot of a Store.
func trackableVars(fn *ssa.Function) map[*types.Var]*ssa.Alloc {
	cells := make(map[*ssa.Alloc]*types.Var)
	var walk func(fn *ssa.Function)
	escape := func(v ssa.Value) {
		if a, ok := v.(*ssa.Alloc); ok {
			delete(cells, a)
		}
	}
	walk = func(fn *ssa.Function) {
		for _, b := range fn.Blocks {
			for _, instr := range b.Instrs {
				if a, ok := instr.(*ssa.Alloc); ok && a.Obj != nil && !a.Heap {
					if isPointerLike(a.Obj.Type()) {
						cells[a] = a.Obj
					}
				}
			}
		}
		for _, b := range fn.Blocks {
			for _, instr := range b.Instrs {
				switch instr := instr.(type) {
				case *ssa.Load:
					// reading the cell: fine
				case *ssa.Store:
					escape(instr.Val) // storing the address aliases it
				default:
					for _, op := range instr.Operands() {
						escape(op)
					}
				}
			}
		}
	}
	walk(fn)
	out := make(map[*types.Var]*ssa.Alloc, len(cells))
	for a, v := range cells {
		out[v] = a
	}
	return out
}

func isPointerLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature, *types.Slice, *types.Interface:
		return true
	}
	return false
}

// varOfLoad maps a Load of a tracked cell back to its variable.
func varOfLoad(v ssa.Value, tracked map[*types.Var]*ssa.Alloc) *types.Var {
	load, ok := v.(*ssa.Load)
	if !ok {
		return nil
	}
	a, ok := load.X.(*ssa.Alloc)
	if !ok || a.Obj == nil {
		return nil
	}
	if tracked[a.Obj] == a {
		return a.Obj
	}
	return nil
}

// valueFact classifies the nil-ness of a value being stored.
func valueFact(v ssa.Value, state facts, tracked map[*types.Var]*ssa.Alloc) nilFact {
	switch v := v.(type) {
	case *ssa.Const:
		if v.IsNil() {
			return isNil
		}
		return isNonnil
	case *ssa.Alloc, *ssa.Make, *ssa.MakeClosure, *ssa.FuncValue:
		return isNonnil
	case *ssa.Convert:
		return valueFact(v.X, state, tracked)
	case *ssa.Load:
		if tv := varOfLoad(v, tracked); tv != nil {
			return state[tv]
		}
	}
	return unknown
}

// nilValue reports whether v is definitely nil in the current state.
func nilValue(v ssa.Value, state facts, tracked map[*types.Var]*ssa.Alloc) bool {
	return valueFact(v, state, tracked) == isNil
}

// flowBlock advances state through one block. When report is non-nil,
// definite-nil dereferences are emitted.
func flowBlock(b *ssa.BasicBlock, state facts, tracked map[*types.Var]*ssa.Alloc, report func(token.Pos, string)) facts {
	deref := func(v ssa.Value, pos token.Pos, what string) {
		if report != nil && nilValue(v, state, tracked) {
			report(pos, what)
		}
		// After a successful dereference the value is non-nil.
		if tv := varOfLoad(v, tracked); tv != nil && state[tv] == unknown {
			state[tv] = isNonnil
		}
	}
	for _, instr := range b.Instrs {
		switch instr := instr.(type) {
		case *ssa.FieldAddr:
			if _, isAlloc := instr.X.(*ssa.Alloc); !isAlloc {
				deref(instr.X, instr.Pos(), "field selection")
			}
		case *ssa.IndexAddr:
			deref(instr.X, instr.Pos(), "index operation")
		case *ssa.Load:
			if _, isAlloc := instr.X.(*ssa.Alloc); !isAlloc {
				if _, isGlobal := instr.X.(*ssa.Global); !isGlobal {
					if _, isFree := instr.X.(*ssa.FreeVar); !isFree {
						deref(instr.X, instr.Pos(), "load")
					}
				}
			}
		case *ssa.Store:
			if a, ok := instr.Addr.(*ssa.Alloc); ok && a.Obj != nil && tracked[a.Obj] == a {
				state[a.Obj] = valueFact(instr.Val, state, tracked)
			} else if _, isGlobal := instr.Addr.(*ssa.Global); !isGlobal {
				if _, isAlloc := instr.Addr.(*ssa.Alloc); !isAlloc {
					deref(instr.Addr, instr.Pos(), "store")
				}
			}
		case *ssa.Call:
			// A call may mutate anything reachable; tracked cells do not
			// escape, so their facts survive. But a method call on a
			// tracked nil receiver is itself a likely fault only for
			// value receivers; stay silent (pointer receivers may
			// legitimately handle nil).
			_ = instr
		}
	}
	return state
}

// refineBranch sharpens facts on the taken edge of an If terminator
// comparing a tracked variable against nil. go/cfg orders successors
// (then, else), which the SSA subset preserves.
func refineBranch(b *ssa.BasicBlock, succIdx int, state facts, tracked map[*types.Var]*ssa.Alloc) {
	if len(b.Succs) != 2 {
		return
	}
	n := len(b.Instrs)
	if n == 0 {
		return
	}
	ifInstr, ok := b.Instrs[n-1].(*ssa.If)
	if !ok {
		return
	}
	binop, ok := ifInstr.Cond.(*ssa.BinOp)
	if !ok {
		return
	}
	if binop.Op != token.EQL && binop.Op != token.NEQ {
		return
	}
	var tv *types.Var
	var other ssa.Value
	if v := varOfLoad(binop.X, tracked); v != nil {
		tv, other = v, binop.Y
	} else if v := varOfLoad(binop.Y, tracked); v != nil {
		tv, other = v, binop.X
	} else {
		return
	}
	c, ok := other.(*ssa.Const)
	if !ok || !c.IsNil() {
		return
	}
	eqTaken := succIdx == 0 // then-branch
	if binop.Op == token.NEQ {
		eqTaken = !eqTaken
	}
	if eqTaken {
		state[tv] = isNil
	} else {
		state[tv] = isNonnil
	}
}
