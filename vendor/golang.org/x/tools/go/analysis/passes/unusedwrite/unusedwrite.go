// Package unusedwrite checks for unused writes to the elements of a
// struct or array object.
//
// This vendored copy targets the repo's naive-form SSA subset: a field
// write to a non-escaping struct-typed local is flagged when no read of
// that field (or of the whole struct) is reachable from the write. The
// escape rule is strict — any use of the cell address beyond direct
// Load/Store/FieldAddr disqualifies the variable — so the pass reports
// only certainly-dead stores.
package unusedwrite

import (
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/buildssa"
	"golang.org/x/tools/go/ssa"
)

const Doc = `checks for unused writes to struct fields

The analyzer reports instances of writes to struct fields that are
never read, on objects that are certain not to be aliased.`

var Analyzer = &analysis.Analyzer{
	Name:     "unusedwrite",
	Doc:      Doc,
	URL:      "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/unusedwrite",
	Run:      run,
	Requires: []*analysis.Analyzer{buildssa.Analyzer},
}

func run(pass *analysis.Pass) (interface{}, error) {
	prog := pass.ResultOf[buildssa.Analyzer].(*buildssa.SSA)
	for _, fn := range prog.SrcFuncs {
		if fn.Blocks == nil {
			continue
		}
		runFunc(pass, fn)
	}
	return nil, nil
}

func runFunc(pass *analysis.Pass, fn *ssa.Function) {
	// Defers can read state after every textual write; be silent in
	// functions that use them.
	for _, b := range fn.Blocks {
		for _, instr := range b.Instrs {
			if _, ok := instr.(*ssa.Defer); ok {
				return
			}
		}
	}

	cells := structCells(fn)
	if len(cells) == 0 {
		return
	}

	// Collect field writes per cell and the positions of reads.
	type write struct {
		store *ssa.Store
		field *types.Var
		block *ssa.BasicBlock
		index int // instruction index within block
	}
	var writes []write
	for _, b := range fn.Blocks {
		for i, instr := range b.Instrs {
			st, ok := instr.(*ssa.Store)
			if !ok {
				continue
			}
			fa, ok := st.Addr.(*ssa.FieldAddr)
			if !ok {
				continue
			}
			a, ok := fa.X.(*ssa.Alloc)
			if !ok || !cells[a] || fa.Var == nil {
				continue
			}
			writes = append(writes, write{store: st, field: fa.Var, block: b, index: i})
		}
	}
	if len(writes) == 0 {
		return
	}

	// isRead reports whether instr reads cell a (field f or whole).
	isRead := func(instr ssa.Instruction, a *ssa.Alloc, f *types.Var) bool {
		load, ok := instr.(*ssa.Load)
		if !ok {
			return false
		}
		switch x := load.X.(type) {
		case *ssa.Alloc:
			return x == a // whole-struct read
		case *ssa.FieldAddr:
			inner, ok := x.X.(*ssa.Alloc)
			return ok && inner == a && (x.Var == nil || x.Var == f)
		}
		return false
	}

	for _, w := range writes {
		fa := w.store.Addr.(*ssa.FieldAddr)
		a := fa.X.(*ssa.Alloc)

		// Forward reachability from just after the store.
		used := false
		for _, instr := range w.block.Instrs[w.index+1:] {
			if isRead(instr, a, w.field) {
				used = true
				break
			}
		}
		if !used {
			seen := map[*ssa.BasicBlock]bool{}
			stack := append([]*ssa.BasicBlock(nil), w.block.Succs...)
			for len(stack) > 0 && !used {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if seen[b] {
					continue
				}
				seen[b] = true
				for _, instr := range b.Instrs {
					if isRead(instr, a, w.field) {
						used = true
						break
					}
				}
				if !used {
					stack = append(stack, b.Succs...)
				}
			}
		}
		if !used {
			pass.Reportf(w.store.Pos(), "unused write to field %s", w.field.Name())
		}
	}
}

// structCells returns the Alloc cells of non-escaping struct-typed
// locals. A cell escapes if its address is used by anything other than
// Load, Store (as the address), or FieldAddr.
func structCells(fn *ssa.Function) map[*ssa.Alloc]bool {
	cells := make(map[*ssa.Alloc]bool)
	for _, b := range fn.Blocks {
		for _, instr := range b.Instrs {
			if a, ok := instr.(*ssa.Alloc); ok && a.Obj != nil && !a.Heap {
				if _, isStruct := a.Obj.Type().Underlying().(*types.Struct); isStruct {
					cells[a] = true
				}
			}
		}
	}
	if len(cells) == 0 {
		return cells
	}
	escape := func(v ssa.Value) {
		if a, ok := v.(*ssa.Alloc); ok {
			delete(cells, a)
		}
	}
	for _, b := range fn.Blocks {
		for _, instr := range b.Instrs {
			switch instr := instr.(type) {
			case *ssa.Load:
				// reading is fine
			case *ssa.FieldAddr:
				// taking a field address is fine; uses of the FieldAddr
				// value itself are checked below
			case *ssa.Store:
				escape(instr.Val)
			default:
				for _, op := range instr.Operands() {
					escape(op)
				}
			}
		}
	}
	// A FieldAddr of a tracked cell whose value leaks (beyond Load/Store
	// address) aliases the cell too.
	for _, b := range fn.Blocks {
		for _, instr := range b.Instrs {
			leak := func(v ssa.Value) {
				if fa, ok := v.(*ssa.FieldAddr); ok {
					escape(fa.X)
				}
			}
			switch instr := instr.(type) {
			case *ssa.Load:
			case *ssa.Store:
				leak(instr.Val)
			case *ssa.FieldAddr:
				leak(instr.X) // nested field-of-field: treat as alias
			default:
				for _, op := range instr.Operands() {
					leak(op)
				}
			}
		}
	}
	return cells
}
