// Package ssa defines a representation of the elements of Go programs
// (packages, functions, values, instructions) in a static
// single-assignment form suitable for dataflow analyses.
//
// This copy is an offline clean-room subset written for vendored,
// network-free builds: it mirrors the upstream golang.org/x/tools/go/ssa
// API *shape* (Package, Function, BasicBlock, the Value and Instruction
// interfaces, and the instruction vocabulary the analysis passes in this
// tree consume) but not its full surface or fidelity. Functions are
// built in the unlifted "naive" form the upstream builder produces under
// ssa.NaiveForm: every local variable is an Alloc cell accessed through
// explicit Load and Store instructions, and no φ-nodes are inserted.
// Register promotion is out of subset scope; the passes compensate with
// variable-keyed dataflow facts. Constructs outside the subset lower to
// Opaque instructions whose operands are still visible, so analyses
// degrade conservatively instead of missing effects.
//
// Control flow comes from the vendored golang.org/x/tools/go/cfg package
// (via the ctrlflow analysis pass), which already linearizes if/for/
// range/switch/select into blocks; the builder in this package only
// lowers the statement and expression nodes of each block.
package ssa

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// A Package is the SSA form of the functions of one Go package.
type Package struct {
	Pkg   *types.Package
	Funcs []*Function // source order; anonymous functions follow their parents
}

// A Function is the SSA form of one source-level function or function
// literal. Blocks is nil for functions whose body could not be lowered
// (no body, or a construct outside the builder subset that made it bail
// out); analyses must skip those.
type Function struct {
	Name      string      // declared name, or "parent$N" for anonymous functions
	Object    *types.Func // declared object; nil for function literals
	Signature *types.Signature
	Syntax    ast.Node // *ast.FuncDecl or *ast.FuncLit
	Parent    *Function
	Params    []*Parameter
	Blocks    []*BasicBlock // Blocks[0] is the entry block; nil if unbuilt
	AnonFuncs []*Function

	// BuildError carries the reason a body was left unbuilt ("" when
	// Blocks is valid). The builder never fails the analysis run: an
	// unlowerable function simply becomes invisible to SSA passes.
	BuildError string

	pos token.Pos
}

func (f *Function) Pos() token.Pos { return f.pos }

func (f *Function) String() string { return f.Name }

// A BasicBlock is a maximal straight-line sequence of instructions.
// The final instruction is the block terminator: If (two successors),
// Jump (one), or Return/Panic (none).
type BasicBlock struct {
	Index   int
	Comment string // the cfg block label, e.g. "for.body"
	Instrs  []Instruction
	Succs   []*BasicBlock
	Preds   []*BasicBlock

	parent *Function
}

func (b *BasicBlock) Parent() *Function { return b.parent }

// Value is an SSA value: the result of an instruction, a parameter, a
// constant, or a reference to a variable's storage cell.
type Value interface {
	Pos() token.Pos
	Type() types.Type
	Name() string
}

// Instruction is one SSA instruction. Instructions that compute a
// result additionally implement Value.
type Instruction interface {
	Pos() token.Pos
	Block() *BasicBlock
	// Operands returns the instruction's value operands (never
	// including nil entries).
	Operands() []Value
	String() string
}

// register is the embedded base of every instruction.
type register struct {
	pos   token.Pos
	typ   types.Type
	block *BasicBlock
	num   int
}

func (r *register) Pos() token.Pos     { return r.pos }
func (r *register) Type() types.Type   { return r.typ }
func (r *register) Block() *BasicBlock { return r.block }
func (r *register) Name() string       { return fmt.Sprintf("t%d", r.num) }

// ---- leaf values ----

// A Const is a compile-time constant, including typed and untyped nil.
type Const struct {
	typ   types.Type
	Value constant.Value // nil for nil constants and zero values
	nil_  bool
}

// NilConst returns a nil constant of the given type.
func NilConst(t types.Type) *Const { return &Const{typ: t, nil_: true} }

func (c *Const) Pos() token.Pos   { return token.NoPos }
func (c *Const) Type() types.Type { return c.typ }
func (c *Const) Name() string {
	if c.nil_ {
		return "nil:" + safeTypeString(c.typ)
	}
	if c.Value == nil {
		return "zero:" + safeTypeString(c.typ)
	}
	return c.Value.String()
}

// IsNil reports whether the constant is nil (or the zero value of a
// pointer-like type).
func (c *Const) IsNil() bool { return c.nil_ }

// A Parameter represents one input parameter of a Function.
type Parameter struct {
	Obj    *types.Var
	parent *Function
}

func (p *Parameter) Pos() token.Pos   { return p.Obj.Pos() }
func (p *Parameter) Type() types.Type { return p.Obj.Type() }
func (p *Parameter) Name() string     { return p.Obj.Name() }

// A Global is the address of a package-level variable. Its Type is a
// pointer to the variable's declared type.
type Global struct {
	Obj *types.Var
}

func (g *Global) Pos() token.Pos   { return g.Obj.Pos() }
func (g *Global) Type() types.Type { return types.NewPointer(g.Obj.Type()) }
func (g *Global) Name() string     { return g.Obj.Name() }

// A FreeVar is the address of a variable captured from an enclosing
// function. Like Global, its Type is a pointer to the variable's type.
type FreeVar struct {
	Obj    *types.Var
	parent *Function
}

func (v *FreeVar) Pos() token.Pos   { return v.Obj.Pos() }
func (v *FreeVar) Type() types.Type { return types.NewPointer(v.Obj.Type()) }
func (v *FreeVar) Name() string     { return v.Obj.Name() }

// A FuncValue is a reference to a declared function or method used as a
// value or call target.
type FuncValue struct {
	Obj *types.Func
}

func (f *FuncValue) Pos() token.Pos   { return f.Obj.Pos() }
func (f *FuncValue) Type() types.Type { return f.Obj.Type() }
func (f *FuncValue) Name() string     { return f.Obj.Name() }

// ---- memory instructions ----

// An Alloc is the storage cell of one local variable (including
// parameters, which the entry block spills). Its Type is a pointer to
// the variable's type, like upstream ssa.Alloc.
type Alloc struct {
	register
	Obj  *types.Var // nil for anonymous cells (&T{...} literals)
	Heap bool
}

func (a *Alloc) Operands() []Value { return nil }
func (a *Alloc) String() string {
	if a.Obj != nil {
		return "local " + a.Obj.Name()
	}
	return "alloc"
}
func (a *Alloc) Name() string {
	if a.Obj != nil {
		return "&" + a.Obj.Name()
	}
	return a.register.Name()
}

// A Load reads the value at an address (an Alloc, Global, FreeVar,
// FieldAddr, IndexAddr, or a computed pointer). It subsumes upstream
// UnOp{MUL}.
type Load struct {
	register
	X Value
}

func (l *Load) Operands() []Value { return []Value{l.X} }
func (l *Load) String() string    { return "load " + l.X.Name() }

// A Store writes Val to the address Addr.
type Store struct {
	register
	Addr Value
	Val  Value
}

func (s *Store) Operands() []Value { return []Value{s.Addr, s.Val} }
func (s *Store) String() string    { return "store " + s.Addr.Name() }

// A FieldAddr computes the address of field Field of the struct
// pointed to by X.
type FieldAddr struct {
	register
	X     Value
	Field int        // index into the struct's fields
	Var   *types.Var // the field object (convenience; may be nil)
}

func (f *FieldAddr) Operands() []Value { return []Value{f.X} }
func (f *FieldAddr) String() string {
	name := fmt.Sprint(f.Field)
	if f.Var != nil {
		name = f.Var.Name()
	}
	return "&" + f.X.Name() + "." + name
}

// An IndexAddr computes the address of element Index of the slice or
// array pointed to by X.
type IndexAddr struct {
	register
	X     Value
	Index Value
}

func (i *IndexAddr) Operands() []Value { return []Value{i.X, i.Index} }
func (i *IndexAddr) String() string    { return "&" + i.X.Name() + "[...]" }

// ---- operators ----

// A BinOp computes X Op Y.
type BinOp struct {
	register
	Op token.Token
	X  Value
	Y  Value
}

func (b *BinOp) Operands() []Value { return []Value{b.X, b.Y} }
func (b *BinOp) String() string    { return b.X.Name() + " " + b.Op.String() + " " + b.Y.Name() }

// A UnOp computes Op X. Op == token.ARROW is a channel receive;
// pointer indirection is expressed as Load, not UnOp{MUL}.
type UnOp struct {
	register
	Op      token.Token
	X       Value
	CommaOk bool
}

func (u *UnOp) Operands() []Value { return []Value{u.X} }
func (u *UnOp) String() string    { return u.Op.String() + u.X.Name() }

// A Convert is a value conversion (including interface boxing in this
// subset).
type Convert struct {
	register
	X Value
}

func (c *Convert) Operands() []Value { return []Value{c.X} }
func (c *Convert) String() string    { return "convert " + c.X.Name() }

// An Extract selects component Index of a tuple-valued instruction.
type Extract struct {
	register
	Tuple Value
	Index int
}

func (e *Extract) Operands() []Value { return []Value{e.Tuple} }
func (e *Extract) String() string    { return fmt.Sprintf("extract %s #%d", e.Tuple.Name(), e.Index) }

// A MakeClosure binds free variables into a function literal. Bindings
// holds the *addresses* (Alloc/FreeVar cells) of the captured
// variables, so an analysis sees captured locals escape.
type MakeClosure struct {
	register
	Fn       *Function
	Bindings []Value
}

func (m *MakeClosure) Operands() []Value { return m.Bindings }
func (m *MakeClosure) String() string    { return "make closure " + m.Fn.Name }

// A Make allocates a chan, map, or slice. The result is never nil.
type Make struct {
	register
	Ops []Value
}

func (m *Make) Operands() []Value { return m.Ops }
func (m *Make) String() string    { return "make " + safeTypeString(m.typ) }

// An Opaque stands for any computation outside the builder subset
// (type assertions, slice expressions, composite literal payloads,
// builtin calls, ...). Its operands are the lowered sub-values, so
// escape-style analyses still see every value that flows into it.
type Opaque struct {
	register
	Op  string
	Ops []Value
}

func (o *Opaque) Operands() []Value { return o.Ops }
func (o *Opaque) String() string    { return "opaque " + o.Op }

// ---- calls ----

// CallCommon holds the shared parts of Call, Defer, and Go.
//
// Deviation from upstream: the static callee is resolved at build time
// to its *types.Func (the upstream StaticCallee returns *ssa.Function,
// which requires whole-program construction this subset does not do).
type CallCommon struct {
	Callee *types.Func // static callee, nil for dynamic and builtin calls
	Value  Value       // callee operand for dynamic calls (a loaded func value); nil otherwise
	Recv   Value       // receiver for method calls; nil otherwise
	Args   []Value     // arguments, excluding the receiver
}

// StaticCallee returns the statically resolved callee, or nil.
func (c *CallCommon) StaticCallee() *types.Func { return c.Callee }

func (c *CallCommon) operands() []Value {
	var ops []Value
	if c.Value != nil {
		ops = append(ops, c.Value)
	}
	if c.Recv != nil {
		ops = append(ops, c.Recv)
	}
	ops = append(ops, c.Args...)
	return ops
}

func (c *CallCommon) calleeName() string {
	if c.Callee != nil {
		return c.Callee.Name()
	}
	if c.Value != nil {
		return c.Value.Name()
	}
	return "?"
}

// A Call invokes a function or method and yields its result.
type Call struct {
	register
	Common CallCommon
}

func (c *Call) Operands() []Value { return c.Common.operands() }
func (c *Call) String() string    { return "call " + c.Common.calleeName() }

// A Defer pushes a deferred call.
type Defer struct {
	register
	Common CallCommon
}

func (d *Defer) Operands() []Value { return d.Common.operands() }
func (d *Defer) String() string    { return "defer " + d.Common.calleeName() }

// A Go launches a goroutine.
type Go struct {
	register
	Common CallCommon
}

func (g *Go) Operands() []Value { return g.Common.operands() }
func (g *Go) String() string    { return "go " + g.Common.calleeName() }

// ---- channel operations ----

// A Send sends X on channel Chan.
type Send struct {
	register
	Chan Value
	X    Value
}

func (s *Send) Operands() []Value { return []Value{s.Chan, s.X} }
func (s *Send) String() string    { return "send " + s.Chan.Name() }

// ---- terminators ----

// A Return terminates the function, yielding Results.
type Return struct {
	register
	Results []Value
}

func (r *Return) Operands() []Value { return r.Results }
func (r *Return) String() string    { return "return" }

// A Jump transfers control to the block's sole successor.
type Jump struct {
	register
}

func (j *Jump) Operands() []Value { return nil }
func (j *Jump) String() string    { return "jump" }

// An If transfers control to the first successor if Cond is true, the
// second otherwise.
type If struct {
	register
	Cond Value
}

func (i *If) Operands() []Value { return []Value{i.Cond} }
func (i *If) String() string    { return "if " + i.Cond.Name() }

// A Panic calls panic(X) and unwinds.
type Panic struct {
	register
	X Value
}

func (p *Panic) Operands() []Value { return []Value{p.X} }
func (p *Panic) String() string    { return "panic" }

func safeTypeString(t types.Type) string {
	if t == nil {
		return "?"
	}
	return t.String()
}
