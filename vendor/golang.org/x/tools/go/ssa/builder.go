package ssa

// This file lowers the statement and expression nodes of a go/cfg
// control-flow graph into the instruction set of ssa.go. The CFG has
// already linearized all control flow (if/for/range/switch/select,
// goto, labeled break/continue), so lowering is a per-node transfer:
// every cfg.Block becomes one BasicBlock whose terminator is derived
// from the block's successor count.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/cfg"
	"golang.org/x/tools/go/types/typeutil"
)

// BuildFunction lowers one declared function or function literal.
// cfgOf resolves the CFG of nested function literals (return nil to
// leave them unbuilt). The returned Function has Blocks == nil and a
// non-empty BuildError if the body could not be lowered.
func BuildFunction(pkg *types.Package, info *types.Info, syntax ast.Node, g *cfg.CFG, cfgOf func(*ast.FuncLit) *cfg.CFG) *Function {
	return buildFunction(pkg, info, syntax, g, cfgOf, nil, "")
}

func buildFunction(pkg *types.Package, info *types.Info, syntax ast.Node, g *cfg.CFG,
	cfgOf func(*ast.FuncLit) *cfg.CFG, parent *Function, anonName string) *Function {

	fn := &Function{Syntax: syntax, Parent: parent, pos: syntax.Pos()}
	switch s := syntax.(type) {
	case *ast.FuncDecl:
		if obj, ok := info.Defs[s.Name].(*types.Func); ok {
			fn.Object = obj
			fn.Signature, _ = obj.Type().(*types.Signature)
		}
		fn.Name = s.Name.Name
	case *ast.FuncLit:
		fn.Name = anonName
		if tv, ok := info.Types[s]; ok {
			fn.Signature, _ = tv.Type.(*types.Signature)
		}
	}
	if g == nil || len(g.Blocks) == 0 {
		fn.BuildError = "no control-flow graph"
		return fn
	}

	b := &builder{
		pkg:    pkg,
		info:   info,
		fn:     fn,
		cfgOf:  cfgOf,
		allocs: make(map[*types.Var]*Alloc),
		free:   make(map[*types.Var]*FreeVar),
		ranged: make(map[ast.Expr]bool),
	}

	// The builder must never take hwatchvet down with it: a construct
	// outside the subset leaves this one function unbuilt instead.
	defer func() {
		if r := recover(); r != nil {
			fn.Blocks = nil
			fn.BuildError = fmt.Sprint(r)
		}
	}()

	b.markRangeVars(bodyOf(syntax))
	b.build(g)
	return fn
}

func bodyOf(syntax ast.Node) *ast.BlockStmt {
	switch s := syntax.(type) {
	case *ast.FuncDecl:
		return s.Body
	case *ast.FuncLit:
		return s.Body
	}
	return nil
}

type builder struct {
	pkg    *types.Package
	info   *types.Info
	fn     *Function
	cfgOf  func(*ast.FuncLit) *cfg.CFG
	allocs map[*types.Var]*Alloc
	free   map[*types.Var]*FreeVar
	// ranged marks the Key/Value expressions of range statements: go/cfg
	// emits them as bare expression nodes, but they are *assignments* by
	// the range protocol, not reads.
	ranged map[ast.Expr]bool

	cur  *BasicBlock
	nreg int
}

// markRangeVars records range Key/Value exprs (assignment targets) so
// the node walk can tell them apart from ordinary value reads.
func (b *builder) markRangeVars(body *ast.BlockStmt) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok {
			if r.Key != nil {
				b.ranged[r.Key] = true
			}
			if r.Value != nil {
				b.ranged[r.Value] = true
			}
		}
		return true
	})
}

func (b *builder) build(g *cfg.CFG) {
	blocks := make(map[*cfg.Block]*BasicBlock, len(g.Blocks))
	for i, cb := range g.Blocks {
		bb := &BasicBlock{Index: i, Comment: cb.Kind.String(), parent: b.fn}
		blocks[cb] = bb
		b.fn.Blocks = append(b.fn.Blocks, bb)
	}
	for _, cb := range g.Blocks {
		bb := blocks[cb]
		for _, s := range cb.Succs {
			succ := blocks[s]
			bb.Succs = append(bb.Succs, succ)
			succ.Preds = append(succ.Preds, bb)
		}
	}

	// Spill parameters (and the receiver) into their storage cells in
	// the entry block, naive-form style.
	b.cur = b.fn.Blocks[0]
	b.spillParams()

	for i, cb := range g.Blocks {
		b.cur = b.fn.Blocks[i]
		var lastVal Value
		for _, n := range cb.Nodes {
			lastVal = b.node(n)
		}
		b.terminate(b.cur, lastVal)
	}
}

func (b *builder) spillParams() {
	var fields []*ast.Field
	if fd, ok := b.fn.Syntax.(*ast.FuncDecl); ok {
		if fd.Recv != nil {
			fields = append(fields, fd.Recv.List...)
		}
		if fd.Type.Params != nil {
			fields = append(fields, fd.Type.Params.List...)
		}
	} else if fl, ok := b.fn.Syntax.(*ast.FuncLit); ok {
		if fl.Type.Params != nil {
			fields = append(fields, fl.Type.Params.List...)
		}
	}
	for _, f := range fields {
		for _, name := range f.Names {
			v, ok := b.info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			p := &Parameter{Obj: v, parent: b.fn}
			b.fn.Params = append(b.fn.Params, p)
			cell := b.cellFor(v)
			b.emit(&Store{register: b.reg(name.Pos(), nil), Addr: cell, Val: p})
		}
	}
}

// terminate appends the block terminator implied by the successor count.
func (b *builder) terminate(bb *BasicBlock, lastVal Value) {
	switch len(bb.Succs) {
	case 0:
		if n := len(bb.Instrs); n > 0 {
			switch bb.Instrs[n-1].(type) {
			case *Return, *Panic:
				return
			}
		}
		b.emit(&Return{register: b.reg(token.NoPos, nil)})
	case 1:
		b.emit(&Jump{register: b.reg(token.NoPos, nil)})
	default:
		cond := lastVal
		if cond == nil {
			cond = b.opaque(token.NoPos, "cond", nil, nil)
		}
		b.emit(&If{register: b.reg(token.NoPos, nil), Cond: cond})
	}
}

func (b *builder) reg(pos token.Pos, t types.Type) register {
	b.nreg++
	return register{pos: pos, typ: t, block: b.cur, num: b.nreg}
}

func (b *builder) emit(instr Instruction) Instruction {
	b.cur.Instrs = append(b.cur.Instrs, instr)
	return instr
}

func (b *builder) opaque(pos token.Pos, op string, t types.Type, ops []Value) *Opaque {
	o := &Opaque{register: b.reg(pos, t), Op: op, Ops: ops}
	b.emit(o)
	return o
}

// cellFor returns the storage cell (Alloc, FreeVar, or Global) of a
// variable referenced from the current function.
func (b *builder) cellFor(v *types.Var) Value {
	if a, ok := b.allocs[v]; ok {
		return a
	}
	if fv, ok := b.free[v]; ok {
		return fv
	}
	if v.Parent() == b.pkg.Scope() {
		return &Global{Obj: v}
	}
	if b.fn.Syntax.Pos() <= v.Pos() && v.Pos() <= b.fn.Syntax.End() {
		a := &Alloc{register: b.reg(v.Pos(), types.NewPointer(v.Type())), Obj: v}
		b.allocs[v] = a
		b.emit(a)
		return a
	}
	fv := &FreeVar{Obj: v, parent: b.fn}
	b.free[v] = fv
	return fv
}

// ---- statement-level nodes ----

// node lowers one cfg node and returns its value when the node is a
// bare expression (the potential branch condition of the block).
func (b *builder) node(n ast.Node) Value {
	switch n := n.(type) {
	case *ast.AssignStmt:
		b.assign(n)
	case *ast.ValueSpec:
		b.valueSpec(n)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					b.valueSpec(vs)
				}
			}
		}
	case *ast.ExprStmt:
		b.expr(n.X)
	case *ast.SendStmt:
		ch := b.expr(n.Chan)
		x := b.expr(n.Value)
		b.emit(&Send{register: b.reg(n.Arrow, nil), Chan: ch, X: x})
	case *ast.IncDecStmt:
		addr := b.addr(n.X)
		old := b.load(n.X.Pos(), addr)
		op := token.ADD
		if n.Tok == token.DEC {
			op = token.SUB
		}
		one := &Const{typ: types.Typ[types.UntypedInt]}
		v := &BinOp{register: b.reg(n.Pos(), typeOf(b.info, n.X)), Op: op, X: old, Y: one}
		b.emit(v)
		b.emit(&Store{register: b.reg(n.Pos(), nil), Addr: addr, Val: v})
	case *ast.ReturnStmt:
		r := &Return{register: b.reg(n.Pos(), nil)}
		for _, res := range n.Results {
			r.Results = append(r.Results, b.expr(res))
		}
		b.emit(r)
	case *ast.DeferStmt:
		common := b.callCommon(n.Call)
		b.emit(&Defer{register: b.reg(n.Pos(), nil), Common: common})
	case *ast.GoStmt:
		common := b.callCommon(n.Call)
		b.emit(&Go{register: b.reg(n.Pos(), nil), Common: common})
	case *ast.BranchStmt, *ast.EmptyStmt, *ast.LabeledStmt,
		*ast.RangeStmt, *ast.SelectStmt, *ast.IfStmt, *ast.ForStmt,
		*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
		// Control flow is already in the CFG shape; nothing to lower.
	case ast.Expr:
		if b.ranged[n] {
			// A range Key/Value: the range protocol assigns it a fresh
			// element each iteration — an unknown-value store.
			b.rangeAssign(n)
			return nil
		}
		return b.expr(n)
	}
	return nil
}

// rangeAssign models `for k, v := range ...`: an opaque store to the
// bound variable (defining or reusing it).
func (b *builder) rangeAssign(e ast.Expr) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		// `for m.f = range ...`: store through the general address path.
		addr := b.addr(e)
		b.emit(&Store{register: b.reg(e.Pos(), nil), Addr: addr,
			Val: b.opaque(e.Pos(), "range", typeOf(b.info, e), nil)})
		return
	}
	if id.Name == "_" {
		return
	}
	v := defOrUseVar(b.info, id)
	if v == nil {
		return
	}
	cell := b.cellFor(v)
	b.emit(&Store{register: b.reg(e.Pos(), nil), Addr: cell,
		Val: b.opaque(e.Pos(), "range", v.Type(), nil)})
}

func (b *builder) valueSpec(n *ast.ValueSpec) {
	// Evaluate initializers first (source order), then store.
	var vals []Value
	for _, rhs := range n.Values {
		vals = append(vals, b.expr(rhs))
	}
	tuple := len(n.Names) > 1 && len(n.Values) == 1
	for i, name := range n.Names {
		if name.Name == "_" {
			continue
		}
		v, ok := b.info.Defs[name].(*types.Var)
		if !ok {
			continue
		}
		cell := b.cellFor(v)
		var val Value
		switch {
		case tuple:
			ex := &Extract{register: b.reg(name.Pos(), v.Type()), Tuple: vals[0], Index: i}
			b.emit(ex)
			val = ex
		case i < len(vals):
			val = vals[i]
		default:
			val = b.zeroValue(v.Type())
		}
		b.emit(&Store{register: b.reg(name.Pos(), nil), Addr: cell, Val: val})
	}
}

// zeroValue is the implicit initial value of a declared variable: nil
// for pointer-like types (the fact nilness runs on), an opaque zero
// otherwise.
func (b *builder) zeroValue(t types.Type) Value {
	if isPointerLike(t) {
		return NilConst(t)
	}
	return &Const{typ: t}
}

func isPointerLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature, *types.Slice, *types.Interface:
		return true
	}
	return false
}

func (b *builder) assign(n *ast.AssignStmt) {
	if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
		// Compound assignment: x op= y.
		addr := b.addr(n.Lhs[0])
		old := b.load(n.Lhs[0].Pos(), addr)
		rhs := b.expr(n.Rhs[0])
		op := assignOp(n.Tok)
		v := &BinOp{register: b.reg(n.Pos(), typeOf(b.info, n.Lhs[0])), Op: op, X: old, Y: rhs}
		b.emit(v)
		b.store(n.Lhs[0], v, addr)
		return
	}
	if len(n.Lhs) > 1 && len(n.Rhs) == 1 {
		// Tuple assignment: a, b = f() / <-ch / m[k] / x.(T).
		tuple := b.expr(n.Rhs[0])
		for i, lhs := range n.Lhs {
			if isBlankExpr(lhs) {
				continue
			}
			ex := &Extract{register: b.reg(lhs.Pos(), typeOf(b.info, lhs)), Tuple: tuple, Index: i}
			b.emit(ex)
			b.store(lhs, ex, nil)
		}
		return
	}
	// Parallel assignment: all RHS evaluate before any store.
	var vals []Value
	for _, rhs := range n.Rhs {
		vals = append(vals, b.expr(rhs))
	}
	for i, lhs := range n.Lhs {
		if isBlankExpr(lhs) || i >= len(vals) {
			continue
		}
		b.store(lhs, vals[i], nil)
	}
}

// store writes val to the location named by lhs. A precomputed address
// may be passed to avoid double evaluation.
func (b *builder) store(lhs ast.Expr, val Value, addr Value) {
	lhs = ast.Unparen(lhs)
	if idx, ok := lhs.(*ast.IndexExpr); ok {
		if _, isMap := typeOf(b.info, idx.X).Underlying().(*types.Map); isMap {
			m := b.expr(idx.X)
			k := b.expr(idx.Index)
			b.opaque(lhs.Pos(), "mapupdate", nil, []Value{m, k, val})
			return
		}
	}
	if addr == nil {
		addr = b.addr(lhs)
	}
	b.emit(&Store{register: b.reg(lhs.Pos(), nil), Addr: addr, Val: val})
}

// ---- addresses ----

// addr lowers an addressable expression to its address value.
func (b *builder) addr(e ast.Expr) Value {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if v := defOrUseVar(b.info, e); v != nil {
			return b.cellFor(v)
		}
	case *ast.SelectorExpr:
		if sel, ok := b.info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return b.fieldAddr(e, sel)
		}
	case *ast.StarExpr:
		return b.expr(e.X) // the pointer value is the address
	case *ast.IndexExpr:
		xt := typeOf(b.info, e.X)
		x := b.expr(e.X)
		idx := b.expr(e.Index)
		switch xt.Underlying().(type) {
		case *types.Slice, *types.Pointer:
			ia := &IndexAddr{register: b.reg(e.Pos(), nil), X: x, Index: idx}
			b.emit(ia)
			return ia
		}
		return b.opaque(e.Pos(), "indexaddr", nil, []Value{x, idx})
	}
	return b.opaque(e.Pos(), "addr", nil, nil)
}

// fieldAddr computes the address of the field e selects. The base is
// the pointer value for pointer bases and the base's own address for
// addressable struct values; embedded hops collapse into one FieldAddr
// (field identity is carried by Var, which analyses key on).
func (b *builder) fieldAddr(e *ast.SelectorExpr, sel *types.Selection) Value {
	var base Value
	if _, ok := typeOf(b.info, e.X).Underlying().(*types.Pointer); ok {
		base = b.expr(e.X)
	} else if isAddressable(b.info, e.X) {
		base = b.addr(e.X)
	} else {
		base = b.expr(e.X)
	}
	idx := sel.Index()
	fa := &FieldAddr{
		register: b.reg(e.Sel.Pos(), nil),
		X:        base,
		Field:    idx[len(idx)-1],
		Var:      fieldVar(sel),
	}
	b.emit(fa)
	return fa
}

func fieldVar(sel *types.Selection) *types.Var {
	if v, ok := sel.Obj().(*types.Var); ok {
		return v
	}
	return nil
}

func isAddressable(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return defOrUseVar(info, e) != nil
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if _, ptr := typeOf(info, e.X).Underlying().(*types.Pointer); ptr {
				return true
			}
			return isAddressable(info, e.X)
		}
	case *ast.StarExpr:
		return true
	case *ast.IndexExpr:
		switch typeOf(info, e.X).Underlying().(type) {
		case *types.Slice:
			return true
		case *types.Pointer:
			return true
		}
		return isAddressable(info, e.X)
	}
	return false
}

// ---- expressions ----

func (b *builder) load(pos token.Pos, addr Value) Value {
	var t types.Type
	if pt, ok := addr.Type().(*types.Pointer); ok {
		t = pt.Elem()
	}
	l := &Load{register: b.reg(pos, t), X: addr}
	b.emit(l)
	return l
}

func (b *builder) expr(e ast.Expr) Value {
	if e == nil {
		return b.opaque(token.NoPos, "nilexpr", nil, nil)
	}
	// Constant-folded expressions (including untyped nil) short-circuit.
	if tv, ok := b.info.Types[e]; ok {
		if tv.Value != nil {
			return &Const{typ: tv.Type, Value: tv.Value}
		}
		if tv.IsNil() {
			return NilConst(tv.Type)
		}
	}

	switch e := e.(type) {
	case *ast.Ident:
		return b.identValue(e)
	case *ast.ParenExpr:
		return b.expr(e.X)
	case *ast.SelectorExpr:
		return b.selectorValue(e)
	case *ast.StarExpr:
		ptr := b.expr(e.X)
		return b.load(e.Pos(), ptr)
	case *ast.UnaryExpr:
		switch e.Op {
		case token.AND:
			return b.addrOfOperand(e.X)
		case token.ARROW:
			u := &UnOp{register: b.reg(e.Pos(), typeOf(b.info, e)), Op: token.ARROW, X: b.expr(e.X)}
			b.emit(u)
			return u
		default:
			u := &UnOp{register: b.reg(e.Pos(), typeOf(b.info, e)), Op: e.Op, X: b.expr(e.X)}
			b.emit(u)
			return u
		}
	case *ast.BinaryExpr:
		x := b.expr(e.X)
		y := b.expr(e.Y)
		op := &BinOp{register: b.reg(e.OpPos, typeOf(b.info, e)), Op: e.Op, X: x, Y: y}
		b.emit(op)
		return op
	case *ast.CallExpr:
		return b.call(e)
	case *ast.IndexExpr:
		return b.indexValue(e)
	case *ast.IndexListExpr:
		return b.expr(e.X) // generic instantiation: the value is the function
	case *ast.SliceExpr:
		ops := []Value{b.expr(e.X)}
		for _, bound := range []ast.Expr{e.Low, e.High, e.Max} {
			if bound != nil {
				ops = append(ops, b.expr(bound))
			}
		}
		return b.opaque(e.Pos(), "slice", typeOf(b.info, e), ops)
	case *ast.TypeAssertExpr:
		return b.opaque(e.Pos(), "typeassert", typeOf(b.info, e), []Value{b.expr(e.X)})
	case *ast.CompositeLit:
		var ops []Value
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				ops = append(ops, b.expr(kv.Value))
				continue
			}
			ops = append(ops, b.expr(elt))
		}
		return b.opaque(e.Pos(), "composite", typeOf(b.info, e), ops)
	case *ast.FuncLit:
		return b.closure(e)
	}
	return b.opaque(e.Pos(), "expr", typeOf(b.info, e), nil)
}

// addrOfOperand lowers &x. For &T{...} an anonymous heap cell is
// allocated; for addressable operands the cell address is the value.
func (b *builder) addrOfOperand(x ast.Expr) Value {
	if lit, ok := ast.Unparen(x).(*ast.CompositeLit); ok {
		a := &Alloc{register: b.reg(lit.Pos(), typeOf(b.info, lit)), Heap: true}
		b.emit(a)
		payload := b.expr(lit)
		b.emit(&Store{register: b.reg(lit.Pos(), nil), Addr: a, Val: payload})
		return a
	}
	return b.addr(x)
}

func (b *builder) identValue(e *ast.Ident) Value {
	if e.Name == "_" {
		return b.opaque(e.Pos(), "blank", nil, nil)
	}
	obj := b.info.Uses[e]
	if obj == nil {
		obj = b.info.Defs[e]
	}
	switch obj := obj.(type) {
	case *types.Var:
		cell := b.cellFor(obj)
		return b.load(e.Pos(), cell)
	case *types.Func:
		return &FuncValue{Obj: obj}
	case *types.Nil:
		return NilConst(typeOf(b.info, e))
	}
	return b.opaque(e.Pos(), "ident:"+e.Name, typeOf(b.info, e), nil)
}

func (b *builder) selectorValue(e *ast.SelectorExpr) Value {
	// Qualified identifier: pkg.Name.
	if id, ok := e.X.(*ast.Ident); ok {
		if _, isPkg := b.info.Uses[id].(*types.PkgName); isPkg {
			switch obj := b.info.Uses[e.Sel].(type) {
			case *types.Var:
				return b.load(e.Pos(), &Global{Obj: obj})
			case *types.Func:
				return &FuncValue{Obj: obj}
			}
			return b.opaque(e.Pos(), "qualified", typeOf(b.info, e), nil)
		}
	}
	sel, ok := b.info.Selections[e]
	if !ok {
		return b.opaque(e.Pos(), "selector", typeOf(b.info, e), nil)
	}
	switch sel.Kind() {
	case types.FieldVal:
		base := typeOf(b.info, e.X)
		if _, ptr := base.Underlying().(*types.Pointer); ptr || isAddressable(b.info, e.X) {
			return b.load(e.Sel.Pos(), b.fieldAddr(e, sel))
		}
		// Field of a non-addressable value (f().x): no address exists.
		return b.opaque(e.Sel.Pos(), "fieldval", typeOf(b.info, e), []Value{b.expr(e.X)})
	case types.MethodVal:
		return b.opaque(e.Sel.Pos(), "methodval", typeOf(b.info, e), []Value{b.expr(e.X)})
	}
	return b.opaque(e.Sel.Pos(), "methodexpr", typeOf(b.info, e), nil)
}

func (b *builder) indexValue(e *ast.IndexExpr) Value {
	// Generic instantiation f[T] in call position types as a function.
	if tv, ok := b.info.Types[e.Index]; ok && tv.IsType() {
		return b.expr(e.X)
	}
	xt := typeOf(b.info, e.X)
	switch xt.Underlying().(type) {
	case *types.Map:
		return b.opaque(e.Pos(), "lookup", typeOf(b.info, e), []Value{b.expr(e.X), b.expr(e.Index)})
	case *types.Slice, *types.Pointer:
		x := b.expr(e.X)
		idx := b.expr(e.Index)
		ia := &IndexAddr{register: b.reg(e.Pos(), nil), X: x, Index: idx}
		b.emit(ia)
		return b.load(e.Pos(), ia)
	}
	return b.opaque(e.Pos(), "index", typeOf(b.info, e), []Value{b.expr(e.X), b.expr(e.Index)})
}

func (b *builder) closure(lit *ast.FuncLit) Value {
	var g *cfg.CFG
	if b.cfgOf != nil {
		g = b.cfgOf(lit)
	}
	name := fmt.Sprintf("%s$%d", b.fn.Name, len(b.fn.AnonFuncs)+1)
	sub := buildFunction(b.pkg, b.info, lit, g, b.cfgOf, b.fn, name)
	b.fn.AnonFuncs = append(b.fn.AnonFuncs, sub)

	// Captured variables: anything referenced inside the literal that is
	// declared outside it but not at package scope. Bindings carry the
	// cells so captured locals visibly escape.
	mc := &MakeClosure{register: b.reg(lit.Pos(), typeOf(b.info, lit)), Fn: sub}
	seen := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := b.info.Uses[id].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		if lit.Pos() <= v.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the literal
		}
		if v.Parent() == b.pkg.Scope() {
			return true // package-level, not a capture
		}
		seen[v] = true
		mc.Bindings = append(mc.Bindings, b.cellFor(v))
		return true
	})
	b.emit(mc)
	return mc
}

// ---- calls ----

func (b *builder) call(e *ast.CallExpr) Value {
	// Conversion?
	if tv, ok := b.info.Types[e.Fun]; ok && tv.IsType() {
		var x Value
		if len(e.Args) == 1 {
			x = b.expr(e.Args[0])
		} else {
			x = b.opaque(e.Pos(), "convargs", nil, nil)
		}
		c := &Convert{register: b.reg(e.Pos(), typeOf(b.info, e)), X: x}
		b.emit(c)
		return c
	}
	// Builtin?
	if name, ok := builtinName(b.info, e.Fun); ok {
		return b.builtinCall(e, name)
	}

	common := b.callCommon(e)
	c := &Call{register: b.reg(e.Lparen, typeOf(b.info, e)), Common: common}
	b.emit(c)
	return c
}

func (b *builder) callCommon(e *ast.CallExpr) CallCommon {
	var common CallCommon
	callee, _ := typeutil.Callee(b.info, e).(*types.Func)
	common.Callee = callee

	fun := ast.Unparen(e.Fun)
	switch fun := fun.(type) {
	case *ast.SelectorExpr:
		if sel, ok := b.info.Selections[fun]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				common.Recv = b.expr(fun.X)
			case types.FieldVal:
				// Calling a func-typed field: dynamic.
				common.Callee = nil
				common.Value = b.expr(fun)
			}
		} else if common.Callee == nil {
			common.Value = b.expr(fun)
		}
	default:
		if common.Callee == nil {
			common.Value = b.expr(e.Fun)
		}
	}
	for _, arg := range e.Args {
		common.Args = append(common.Args, b.expr(arg))
	}
	return common
}

func (b *builder) builtinCall(e *ast.CallExpr, name string) Value {
	switch name {
	case "panic":
		var x Value
		if len(e.Args) == 1 {
			x = b.expr(e.Args[0])
		} else {
			x = b.opaque(e.Pos(), "panicarg", nil, nil)
		}
		p := &Panic{register: b.reg(e.Pos(), nil), X: x}
		b.emit(p)
		return b.opaque(e.Pos(), "unreachable", nil, nil)
	case "make":
		var ops []Value
		for _, arg := range e.Args[1:] { // Args[0] is the type
			ops = append(ops, b.expr(arg))
		}
		m := &Make{register: b.reg(e.Pos(), typeOf(b.info, e)), Ops: ops}
		b.emit(m)
		return m
	case "new":
		a := &Alloc{register: b.reg(e.Pos(), typeOf(b.info, e)), Heap: true}
		b.emit(a)
		return a
	}
	var ops []Value
	for _, arg := range e.Args {
		if tv, ok := b.info.Types[arg]; ok && tv.IsType() {
			continue
		}
		ops = append(ops, b.expr(arg))
	}
	return b.opaque(e.Pos(), "builtin:"+name, typeOf(b.info, e), ops)
}

func builtinName(info *types.Info, fun ast.Expr) (string, bool) {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if bi, ok := info.Uses[id].(*types.Builtin); ok {
		return bi.Name(), true
	}
	return "", false
}

// ---- small helpers ----

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func defOrUseVar(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

func isBlankExpr(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

func assignOp(tok token.Token) token.Token {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	case token.REM_ASSIGN:
		return token.REM
	case token.AND_ASSIGN:
		return token.AND
	case token.OR_ASSIGN:
		return token.OR
	case token.XOR_ASSIGN:
		return token.XOR
	case token.SHL_ASSIGN:
		return token.SHL
	case token.SHR_ASSIGN:
		return token.SHR
	case token.AND_NOT_ASSIGN:
		return token.AND_NOT
	}
	return tok
}
