//go:build tools

// This file pins the lint toolchain in go.mod so tool invocations are
// reproducible: golang.org/x/tools (the go/analysis framework hwatchvet
// builds on) is a vendored module dependency, held by the imports below
// even if no first-party package imported it. govulncheck cannot be
// vendored (it needs go/ssa and network-fetched vulnerability data), so
// CI pins it by version on the invocation instead:
// `go run golang.org/x/vuln/cmd/govulncheck@v1.1.4`.
package hwatch

import (
	_ "golang.org/x/tools/go/analysis/unitchecker"
)
